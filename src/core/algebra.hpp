/**
 * @file
 * The space-time algebra's operations (paper Sec. III.D).
 *
 * The s-t algebra is the bounded distributive lattice
 * S = (N0^inf, min, max, 0, inf), closed under addition. The four
 * functions used to build space-time computing networks are:
 *
 *   - min (the lattice meet, "first arrival"),
 *   - max (the lattice join, "last arrival"),
 *   - lt  ("strictly-earlier gate": lt(a,b) = a if a < b else inf),
 *   - inc (delay by a constant: inc(a, c) = a + c).
 *
 * Theorem 1 of the paper shows {min, inc, lt} functionally complete for
 * bounded s-t functions; max is derivable (Lemma 2, see synthesis.hpp).
 *
 * This header also provides volley-level helpers (minOf/maxOf over spans,
 * normalization and shifting of time vectors) shared by the function-table
 * and network machinery.
 */

#ifndef ST_CORE_ALGEBRA_HPP
#define ST_CORE_ALGEBRA_HPP

#include <algorithm>
#include <span>
#include <vector>

#include "core/time.hpp"

namespace st {

/** Lattice meet: the earlier of two event times. */
constexpr Time
tmin(Time a, Time b)
{
    return a < b ? a : b;
}

/** Lattice join: the later of two event times (inf absorbs). */
constexpr Time
tmax(Time a, Time b)
{
    return a < b ? b : a;
}

/**
 * The lt primitive: pass @p a iff it is strictly earlier than @p b.
 *
 * lt(a, b) = a when a < b, and inf otherwise. Ties block: lt(a, a) = inf.
 * This matches the latched CMOS implementation (Fig. 16), where an edge on
 * b at-or-before a closes the latch.
 */
constexpr Time
tlt(Time a, Time b)
{
    return a < b ? a : INF;
}

/** The inc primitive generalized to a constant delay c (c chained +1s). */
constexpr Time
tinc(Time a, Time::rep c = 1)
{
    return a + c;
}

/** Earliest event in a volley; inf for an empty span. */
inline Time
minOf(std::span<const Time> xs)
{
    Time m = INF;
    for (Time x : xs)
        m = tmin(m, x);
    return m;
}

/** Latest event in a volley; 0 for an empty span (join of nothing). */
inline Time
maxOf(std::span<const Time> xs)
{
    Time m = 0_t;
    for (Time x : xs)
        m = tmax(m, x);
    return m;
}

/** Latest *finite* event, or inf if every line is quiet. */
inline Time
maxFiniteOf(std::span<const Time> xs)
{
    Time m = INF;
    for (Time x : xs) {
        if (x.isFinite() && (m.isInf() || x > m))
            m = x;
    }
    return m;
}

/**
 * Shift every element of a volley later by @p c (inf stays inf).
 * This is the transformation under which s-t functions are invariant.
 */
inline std::vector<Time>
shifted(std::span<const Time> xs, Time::rep c)
{
    std::vector<Time> out(xs.begin(), xs.end());
    for (Time &x : out)
        x += c;
    return out;
}

/**
 * Normalize a volley so its earliest spike is at 0 (paper Sec. III.F).
 *
 * Returns the pair (normalized volley, x_min). An all-inf volley is its
 * own normal form with x_min = inf.
 */
struct Normalized
{
    std::vector<Time> values; //!< input with x_min subtracted
    Time shift;               //!< the subtracted x_min (inf if no spikes)
};

inline Normalized
normalize(std::span<const Time> xs)
{
    Normalized result;
    result.shift = minOf(xs);
    result.values.assign(xs.begin(), xs.end());
    if (result.shift.isFinite()) {
        for (Time &x : result.values)
            x = x - result.shift.value();
    }
    return result;
}

} // namespace st

#endif // ST_CORE_ALGEBRA_HPP
