#include "core/network_dot.hpp"

#include <algorithm>
#include <sstream>

namespace st {

std::string
toDot(const Network &net, const std::string &name)
{
    std::ostringstream os;
    os << "digraph " << name << " {\n";
    os << "    rankdir=LR;\n";
    os << "    node [shape=box, fontname=\"Helvetica\"];\n";

    const auto &nodes = net.nodes();
    const auto &outs = net.outputs();
    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        std::ostringstream text;
        switch (n.op) {
          case Op::Input:
            text << "x" << i;
            break;
          case Op::Config:
            text << "cfg=" << n.configValue;
            break;
          case Op::Inc:
            text << "+" << n.delay;
            break;
          case Op::Min:
            text << "min";
            break;
          case Op::Max:
            text << "max";
            break;
          case Op::Lt:
            text << "lt";
            break;
        }
        if (!net.label(static_cast<NodeId>(i)).empty())
            text << " (" << net.label(static_cast<NodeId>(i)) << ")";

        bool is_output =
            std::find(outs.begin(), outs.end(), static_cast<NodeId>(i)) !=
            outs.end();
        os << "    n" << i << " [label=\"" << text.str() << "\"";
        if (n.op == Op::Input)
            os << ", shape=plaintext";
        else if (is_output)
            os << ", peripheries=2";
        os << "];\n";
    }

    for (size_t i = 0; i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        for (size_t p = 0; p < n.fanin.size(); ++p) {
            os << "    n" << n.fanin[p] << " -> n" << i;
            if (n.op == Op::Lt)
                os << " [label=\"" << (p == 0 ? "a" : "b") << "\"]";
            os << ";\n";
        }
    }
    os << "}\n";
    return os.str();
}

} // namespace st
