/**
 * @file
 * Text serialization of space-time networks.
 *
 * A simple line-oriented format so networks (e.g., trained, synthesized
 * or optimized ones) can be stored, diffed and reloaded:
 *
 *     stnet 1
 *     inputs 3
 *     n3 = inc n0 2
 *     n4 = min n3 n1
 *     n5 = lt n4 n2
 *     n6 = config inf
 *     label n5 spike
 *     output n5
 *
 * Node ids are explicit and must be dense and in topological order
 * (which Network guarantees on export). '#' starts a comment.
 */

#ifndef ST_CORE_NETWORK_IO_HPP
#define ST_CORE_NETWORK_IO_HPP

#include <string>

#include "core/network.hpp"

namespace st {

/** Serialize a network to the stnet text format. */
std::string networkToText(const Network &net);

/**
 * Parse a network from the stnet text format.
 * @throws std::invalid_argument on malformed input.
 */
Network networkFromText(const std::string &text);

} // namespace st

#endif // ST_CORE_NETWORK_IO_HPP
