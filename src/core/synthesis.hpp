/**
 * @file
 * Constructive completeness results of the space-time algebra.
 *
 * - Lemma 2 (paper Fig. 8): max is implementable from min and lt alone.
 *   emitMaxFromMinLt() materializes the construction
 *       max(a, b) = min( lt(b, lt(b, a)), lt(a, lt(a, b)) )
 *   and lowerMax() rewrites every Max block of a network with it, yielding
 *   a network over the strict {min, inc, lt} basis.
 *
 * - Theorem 1 (paper Fig. 9): every bounded s-t function, given as a
 *   normalized function table, is synthesized into a minterm canonical
 *   form: per row j, each input x_i is delayed by delta_ij = y_j - x_i;
 *   the delayed values feed one max and one min block; an lt gate passes
 *   the row output y_j exactly when all delayed values agree (i.e., the
 *   input matches the row modulo a time shift). inf row entries feed the
 *   min side undelayed, enforcing the causality-closure match rule. A
 *   final min merges all rows.
 */

#ifndef ST_CORE_SYNTHESIS_HPP
#define ST_CORE_SYNTHESIS_HPP

#include "core/function_table.hpp"
#include "core/network.hpp"

namespace st {

/**
 * Emit the Lemma 2 construction into @p net and return the output node.
 * Adds 4 lt blocks and 1 min block; no inc blocks are needed.
 */
NodeId emitMaxFromMinLt(Network &net, NodeId a, NodeId b);

/** A standalone 2-input, 1-output max network built only from min/lt. */
Network maxFromMinLtNetwork();

/**
 * Rewrite every Max block using the Lemma 2 construction (n-ary blocks
 * are folded left). The result computes the same function over the strict
 * {min, inc, lt} primitive basis; outputs, inputs and config nodes are
 * preserved in order.
 */
Network lowerMax(const Network &net);

/** Options controlling minterm synthesis. */
struct SynthesisOptions
{
    /**
     * Use native Max blocks (as drawn in Fig. 9). When false, the max of
     * each minterm is immediately lowered via Lemma 2 so the result uses
     * only {min, inc, lt} as in the Theorem 1 statement.
     */
    bool useNativeMax = true;

    /** Omit inc blocks with a zero constant (pure wires). */
    bool skipZeroIncs = true;
};

/**
 * Synthesize a network implementing exactly the bounded s-t function
 * defined by @p table (Theorem 1 construction). The returned network has
 * table.arity() inputs and one output. An empty table yields the constant
 * inf function.
 */
Network synthesizeMinterms(const FunctionTable &table,
                           const SynthesisOptions &options = {});

/**
 * Synthesize several functions over shared inputs into one network
 * (the paper assumes single outputs "without losing generality" —
 * this is that generality). Output k computes tables[k]; all tables
 * must have the same arity. Common structure (shared delay taps,
 * identical minterms across outputs) is merged by the optimizer.
 */
Network synthesizeMultiOutput(std::span<const FunctionTable> tables,
                              const SynthesisOptions &options = {});

} // namespace st

#endif // ST_CORE_SYNTHESIS_HPP
