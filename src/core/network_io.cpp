#include "core/network_io.hpp"

#include <sstream>
#include <stdexcept>

namespace st {

std::string
networkToText(const Network &net)
{
    std::ostringstream os;
    os << "stnet 1\n";
    os << "inputs " << net.numInputs() << "\n";
    const auto &nodes = net.nodes();
    for (size_t i = net.numInputs(); i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        os << "n" << i << " = " << opName(n.op);
        switch (n.op) {
          case Op::Config:
            os << ' ' << n.configValue;
            break;
          case Op::Inc:
            os << " n" << n.fanin[0] << ' ' << n.delay;
            break;
          case Op::Min:
          case Op::Max:
          case Op::Lt:
            for (NodeId src : n.fanin)
                os << " n" << src;
            break;
          case Op::Input:
            break;
        }
        os << '\n';
    }
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (!net.label(static_cast<NodeId>(i)).empty())
            os << "label n" << i << ' '
               << net.label(static_cast<NodeId>(i)) << '\n';
    }
    for (NodeId o : net.outputs())
        os << "output n" << o << '\n';
    return os.str();
}

namespace {

[[noreturn]] void
fail(size_t line_no, const std::string &what)
{
    throw std::invalid_argument("networkFromText: line " +
                                std::to_string(line_no) + ": " + what);
}

NodeId
parseNodeRef(const std::string &tok, size_t line_no)
{
    if (tok.size() < 2 || tok[0] != 'n')
        fail(line_no, "expected node reference, got '" + tok + "'");
    try {
        return static_cast<NodeId>(std::stoul(tok.substr(1)));
    } catch (const std::exception &) {
        fail(line_no, "bad node id '" + tok + "'");
    }
}

} // namespace

Network
networkFromText(const std::string &text)
{
    std::istringstream lines(text);
    std::string line;
    size_t line_no = 0;

    auto next_meaningful = [&](std::vector<std::string> &toks) {
        toks.clear();
        while (std::getline(lines, line)) {
            ++line_no;
            auto hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            std::istringstream fields(line);
            std::string tok;
            while (fields >> tok)
                toks.push_back(tok);
            if (!toks.empty())
                return true;
        }
        return false;
    };

    std::vector<std::string> toks;
    if (!next_meaningful(toks) || toks.size() != 2 || toks[0] != "stnet" ||
        toks[1] != "1") {
        fail(line_no, "expected header 'stnet 1'");
    }
    if (!next_meaningful(toks) || toks.size() != 2 ||
        toks[0] != "inputs") {
        fail(line_no, "expected 'inputs <count>'");
    }
    size_t num_inputs = 0;
    try {
        num_inputs = std::stoul(toks[1]);
    } catch (const std::exception &) {
        fail(line_no, "bad input count");
    }

    Network net(num_inputs);
    while (next_meaningful(toks)) {
        if (toks[0] == "output") {
            if (toks.size() != 2)
                fail(line_no, "output takes one node");
            net.markOutput(parseNodeRef(toks[1], line_no));
            continue;
        }
        if (toks[0] == "label") {
            if (toks.size() < 3)
                fail(line_no, "label takes a node and text");
            std::string label = toks[2];
            for (size_t i = 3; i < toks.size(); ++i)
                label += ' ' + toks[i];
            net.setLabel(parseNodeRef(toks[1], line_no), label);
            continue;
        }

        // nK = <op> operands...
        if (toks.size() < 3 || toks[1] != "=")
            fail(line_no, "expected 'nK = op ...'");
        NodeId declared = parseNodeRef(toks[0], line_no);
        const std::string &op = toks[2];
        NodeId created = 0;
        if (op == "config") {
            if (toks.size() != 4)
                fail(line_no, "config takes one value");
            created = net.config(toks[3] == "inf"
                                     ? INF
                                     : Time(std::stoull(toks[3])));
        } else if (op == "inc") {
            if (toks.size() != 5)
                fail(line_no, "inc takes a node and a constant");
            created = net.inc(parseNodeRef(toks[3], line_no),
                              std::stoull(toks[4]));
        } else if (op == "min" || op == "max" || op == "lt") {
            std::vector<NodeId> srcs;
            for (size_t i = 3; i < toks.size(); ++i)
                srcs.push_back(parseNodeRef(toks[i], line_no));
            if (srcs.empty())
                fail(line_no, op + " needs operands");
            if (op == "lt") {
                if (srcs.size() != 2)
                    fail(line_no, "lt takes exactly two operands");
                created = net.lt(srcs[0], srcs[1]);
            } else if (op == "min") {
                created = net.min(std::span<const NodeId>(srcs));
            } else {
                created = net.max(std::span<const NodeId>(srcs));
            }
        } else {
            fail(line_no, "unknown op '" + op + "'");
        }
        if (created != declared) {
            fail(line_no, "node id n" + std::to_string(declared) +
                              " out of sequence (expected n" +
                              std::to_string(created) + ")");
        }
    }
    return net;
}

} // namespace st
