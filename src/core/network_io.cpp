#include "core/network_io.hpp"

#include <sstream>
#include <stdexcept>

#include "fault/status.hpp"

namespace st {

std::string
networkToText(const Network &net)
{
    std::ostringstream os;
    os << "stnet 1\n";
    os << "inputs " << net.numInputs() << "\n";
    const auto &nodes = net.nodes();
    for (size_t i = net.numInputs(); i < nodes.size(); ++i) {
        const Node &n = nodes[i];
        os << "n" << i << " = " << opName(n.op);
        switch (n.op) {
          case Op::Config:
            os << ' ' << n.configValue;
            break;
          case Op::Inc:
            os << " n" << n.fanin[0] << ' ' << n.delay;
            break;
          case Op::Min:
          case Op::Max:
          case Op::Lt:
            for (NodeId src : n.fanin)
                os << " n" << src;
            break;
          case Op::Input:
            break;
        }
        os << '\n';
    }
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (!net.label(static_cast<NodeId>(i)).empty())
            os << "label n" << i << ' '
               << net.label(static_cast<NodeId>(i)) << '\n';
    }
    for (NodeId o : net.outputs())
        os << "output n" << o << '\n';
    return os.str();
}

namespace {

[[noreturn]] void
fail(size_t line_no, const std::string &what)
{
    // Render through st::Status so the loader's diagnostics carry the
    // same code/message/context shape as the rest of the fault layer
    // ("invalid_argument: <what> [line N]").
    const Status status(StatusCode::InvalidArgument, what,
                        "line " + std::to_string(line_no));
    throw std::invalid_argument("networkFromText: " +
                                status.toString());
}

/** Strict unsigned parse: all digits, in range — or fail with @p what. */
uint64_t
parseUint(const std::string &tok, size_t line_no, const char *what)
{
    if (tok.empty() ||
        tok.find_first_not_of("0123456789") != std::string::npos)
        fail(line_no, std::string("bad ") + what + " '" + tok + "'");
    try {
        return std::stoull(tok);
    } catch (const std::exception &) {
        fail(line_no,
             std::string(what) + " out of range '" + tok + "'");
    }
}

NodeId
parseNodeRef(const std::string &tok, size_t line_no)
{
    if (tok.size() < 2 || tok[0] != 'n')
        fail(line_no, "expected node reference, got '" + tok + "'");
    return static_cast<NodeId>(
        parseUint(tok.substr(1), line_no, "node id"));
}

/**
 * Run a Network builder call, converting any builder complaint (a bad
 * node reference, an out-of-sequence id) into the loader's
 * line-numbered diagnostic. Callers must parse every token *before*
 * entering, so only builder errors — never already-contextualized
 * parse failures — are rewrapped.
 */
template <typename Fn>
auto
withLineContext(size_t line_no, Fn &&fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const std::logic_error &e) {
        fail(line_no, e.what());
    }
}

} // namespace

Network
networkFromText(const std::string &text)
{
    std::istringstream lines(text);
    std::string line;
    size_t line_no = 0;

    auto next_meaningful = [&](std::vector<std::string> &toks) {
        toks.clear();
        while (std::getline(lines, line)) {
            ++line_no;
            auto hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            std::istringstream fields(line);
            std::string tok;
            while (fields >> tok)
                toks.push_back(tok);
            if (!toks.empty())
                return true;
        }
        return false;
    };

    std::vector<std::string> toks;
    if (!next_meaningful(toks) || toks.size() != 2 || toks[0] != "stnet" ||
        toks[1] != "1") {
        fail(line_no, "expected header 'stnet 1'");
    }
    if (!next_meaningful(toks) || toks.size() != 2 ||
        toks[0] != "inputs") {
        fail(line_no, "expected 'inputs <count>'");
    }
    size_t num_inputs = static_cast<size_t>(
        parseUint(toks[1], line_no, "input count"));

    Network net(num_inputs);
    while (next_meaningful(toks)) {
        if (toks[0] == "output") {
            if (toks.size() != 2)
                fail(line_no, "output takes one node");
            NodeId ref = parseNodeRef(toks[1], line_no);
            withLineContext(line_no, [&] { net.markOutput(ref); });
            continue;
        }
        if (toks[0] == "label") {
            if (toks.size() < 3)
                fail(line_no, "label takes a node and text");
            std::string label = toks[2];
            for (size_t i = 3; i < toks.size(); ++i)
                label += ' ' + toks[i];
            NodeId ref = parseNodeRef(toks[1], line_no);
            withLineContext(line_no,
                            [&] { net.setLabel(ref, label); });
            continue;
        }

        // nK = <op> operands...
        if (toks.size() < 3 || toks[1] != "=")
            fail(line_no, "expected 'nK = op ...'");
        NodeId declared = parseNodeRef(toks[0], line_no);
        const std::string &op = toks[2];
        NodeId created = 0;
        if (op == "config") {
            if (toks.size() != 4)
                fail(line_no, "config takes one value");
            const Time value =
                toks[3] == "inf"
                    ? INF
                    : Time(parseUint(toks[3], line_no,
                                     "config value"));
            created = net.config(value);
        } else if (op == "inc") {
            if (toks.size() != 5)
                fail(line_no, "inc takes a node and a constant");
            NodeId src = parseNodeRef(toks[3], line_no);
            const Time::rep delay =
                parseUint(toks[4], line_no, "inc constant");
            created = withLineContext(
                line_no, [&] { return net.inc(src, delay); });
        } else if (op == "min" || op == "max" || op == "lt") {
            std::vector<NodeId> srcs;
            for (size_t i = 3; i < toks.size(); ++i)
                srcs.push_back(parseNodeRef(toks[i], line_no));
            if (srcs.empty())
                fail(line_no, op + " needs operands");
            if (op == "lt" && srcs.size() != 2)
                fail(line_no, "lt takes exactly two operands");
            created = withLineContext(line_no, [&]() -> NodeId {
                if (op == "lt")
                    return net.lt(srcs[0], srcs[1]);
                if (op == "min")
                    return net.min(std::span<const NodeId>(srcs));
                return net.max(std::span<const NodeId>(srcs));
            });
        } else {
            fail(line_no, "unknown op '" + op + "'");
        }
        if (created != declared) {
            fail(line_no, "node id n" + std::to_string(declared) +
                              " out of sequence (expected n" +
                              std::to_string(created) + ")");
        }
    }
    return net;
}

} // namespace st
