/**
 * @file
 * AVX2 body of EvalProgram::runBlock (x86-64 only; this translation
 * unit is compiled with -mavx2 and entered only after the caller's
 * runtime CPUID probe succeeds, so the rest of the library stays at
 * the baseline ISA).
 *
 * A full block is kEvalBlockLanes == 8 volleys, so every value row is
 * two 256-bit vectors of four uint64 times each. AVX2 has no unsigned
 * 64-bit compare, so min/max/lt flip the sign bit of both operands and
 * use the signed vpcmpgtq — the classic bias trick, exact for every
 * bit pattern including the all-ones inf representation. Saturating
 * delay addition keeps the branchless form of the scalar executor:
 * a wrapped sum compares below its operand, and OR-ing the resulting
 * all-ones compare mask into the sum lands exactly on inf.
 */

#include "core/eval_plan.hpp"

#include <immintrin.h>

#include <bit>
#include <cstdint>
#include <limits>

#include "core/network.hpp"

namespace st::detail {

namespace {

static_assert(kEvalBlockLanes == 8,
              "the AVX2 executor hard-codes two 4-wide vectors per row");

/** One value row of a full block: 8 lanes as two 4x64 vectors. */
struct Row
{
    __m256i lo, hi;
};

inline Row
loadRow(const Time *p)
{
    // __m256i loads may alias any object representation, and Time is
    // a single trivially copyable uint64.
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i *>(p)),
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(p + 4))};
}

inline void
storeRow(Time *p, Row r)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), r.lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p + 4), r.hi);
}

/** Sign-bit flip making signed vpcmpgtq order unsigned operands. */
inline __m256i
bias()
{
    return _mm256_set1_epi64x(std::numeric_limits<int64_t>::min());
}

/** a > b, unsigned per 64-bit lane (all-ones mask where true). */
inline __m256i
vgtu(__m256i a, __m256i b)
{
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias()),
                              _mm256_xor_si256(b, bias()));
}

inline __m256i
vmin(__m256i a, __m256i b)
{
    return _mm256_blendv_epi8(a, b, vgtu(a, b));
}

inline __m256i
vmax(__m256i a, __m256i b)
{
    return _mm256_blendv_epi8(b, a, vgtu(a, b));
}

/** a where a < b, inf elsewhere (the lt gate). */
inline __m256i
vlt(__m256i a, __m256i b)
{
    return _mm256_blendv_epi8(_mm256_set1_epi64x(-1), a, vgtu(b, a));
}

/** Saturating x + d: a wrapped sum ORs to the all-ones inf pattern. */
inline __m256i
vsat(__m256i x, __m256i d)
{
    const __m256i s = _mm256_add_epi64(x, d);
    return _mm256_or_si256(s, vgtu(x, s));
}

inline Row
satRow(Row r, Time::rep d)
{
    const __m256i dv =
        _mm256_set1_epi64x(static_cast<long long>(d));
    return {vsat(r.lo, dv), vsat(r.hi, dv)};
}

} // namespace

void
runBlockLanes8Avx2(const EvalProgramView &prog, std::span<const Node> nodes,
                   std::span<const std::vector<Time>> batch,
                   std::vector<Time> &values)
{
    constexpr size_t lanes = kEvalBlockLanes;
    values.resize(prog.op.size() * lanes);
    Time *v = values.data();
    const uint32_t *slot = prog.argSlot.data();
    const Time::rep *dly = prog.argDelay.data();
    auto rowOf = [&](uint32_t s) { return v + size_t{s} * lanes; };
    size_t i = 0;
    for (uint32_t runedge : prog.runEnd) {
        const size_t end = runedge;
        switch (static_cast<PlanOp>(prog.op[i])) {
          case PlanOp::Input:
            // Lanes live in separate volley vectors here, so this
            // stays a scalar gather.
            for (; i < end; ++i) {
                Time *o = v + i * lanes;
                const uint32_t src = prog.extra[i];
                for (size_t l = 0; l < lanes; ++l)
                    o[l] = batch[l][src];
            }
            break;
          case PlanOp::Config:
            for (; i < end; ++i) {
                const __m256i c =
                    _mm256_set1_epi64x(static_cast<long long>(
                        std::bit_cast<Time::rep>(
                            nodes[prog.extra[i]].configValue)));
                storeRow(v + i * lanes, Row{c, c});
            }
            break;
          case PlanOp::Min2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                const Row a = loadRow(rowOf(slot[e]));
                const Row b = loadRow(rowOf(slot[e + 1]));
                storeRow(v + i * lanes,
                         Row{vmin(a.lo, b.lo), vmin(a.hi, b.hi)});
            }
            break;
          }
          case PlanOp::Max2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                const Row a = loadRow(rowOf(slot[e]));
                const Row b = loadRow(rowOf(slot[e + 1]));
                storeRow(v + i * lanes,
                         Row{vmax(a.lo, b.lo), vmax(a.hi, b.hi)});
            }
            break;
          }
          case PlanOp::Lt2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                const Row a = loadRow(rowOf(slot[e]));
                const Row b = loadRow(rowOf(slot[e + 1]));
                storeRow(v + i * lanes,
                         Row{vlt(a.lo, b.lo), vlt(a.hi, b.hi)});
            }
            break;
          }
          case PlanOp::Min:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const uint32_t eend = prog.argBeg[i + 1];
                Row m = satRow(loadRow(rowOf(slot[beg])), dly[beg]);
                for (uint32_t e = beg + 1; e < eend; ++e) {
                    const Row x =
                        satRow(loadRow(rowOf(slot[e])), dly[e]);
                    m = Row{vmin(m.lo, x.lo), vmin(m.hi, x.hi)};
                }
                storeRow(v + i * lanes, m);
            }
            break;
          case PlanOp::Max:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const uint32_t eend = prog.argBeg[i + 1];
                Row m = satRow(loadRow(rowOf(slot[beg])), dly[beg]);
                for (uint32_t e = beg + 1; e < eend; ++e) {
                    const Row x =
                        satRow(loadRow(rowOf(slot[e])), dly[e]);
                    m = Row{vmax(m.lo, x.lo), vmax(m.hi, x.hi)};
                }
                storeRow(v + i * lanes, m);
            }
            break;
          case PlanOp::Lt:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const Row a =
                    satRow(loadRow(rowOf(slot[beg])), dly[beg]);
                const Row b = satRow(loadRow(rowOf(slot[beg + 1])),
                                     dly[beg + 1]);
                storeRow(v + i * lanes,
                         Row{vlt(a.lo, b.lo), vlt(a.hi, b.hi)});
            }
            break;
        }
    }
}

} // namespace st::detail
