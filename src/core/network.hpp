/**
 * @file
 * Feedforward space-time computing networks (paper Sec. III.C).
 *
 * A Network is a DAG of primitive functional blocks over the s-t algebra:
 * inputs, inc (constant delay), n-ary min, n-ary max, binary lt, and
 * mutable configuration constants (used for the paper's micro-weights,
 * Sec. IV.B). Nodes may only reference previously created nodes, so
 * construction order is a topological order and Lemma 1 (every such
 * network implements an s-t function) holds structurally.
 *
 * The builder API mirrors how the paper composes networks (Figs. 6, 8, 9,
 * 12, 14, 15): create a network with q inputs, call inc/min/max/lt to add
 * blocks, mark outputs, then evaluate() input volleys. append() embeds one
 * network inside another, which is how the SRM0 construction reuses
 * bitonic sorters.
 */

#ifndef ST_CORE_NETWORK_HPP
#define ST_CORE_NETWORK_HPP

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/algebra.hpp"
#include "core/time.hpp"

namespace st {

struct EvalPlan;
struct EvalScratch;

/** Primitive block kinds available in a space-time network. */
enum class Op : uint8_t
{
    Input,  //!< primary input line
    Config, //!< configuration constant (micro-weight), value 0 or inf
    Inc,    //!< delay by a constant c (c chained +1 blocks)
    Min,    //!< n-ary first-arrival (lattice meet)
    Max,    //!< n-ary last-arrival (lattice join; derivable, Lemma 2)
    Lt,     //!< binary strictly-earlier gate
};

/** Printable name of an op ("inc", "min", ...). */
const char *opName(Op op);

/** Node identifier within a Network. */
using NodeId = uint32_t;

/** One functional block instance. */
struct Node
{
    Op op = Op::Input;
    Time::rep delay = 0;         //!< Inc only: the added constant
    Time configValue = INF;      //!< Config only: current setting
    std::vector<NodeId> fanin;   //!< operand nodes (Lt: exactly [a, b])
};

/**
 * A feedforward space-time computing network.
 *
 * Inputs are implicitly nodes [0, numInputs()). All builder methods
 * validate operand ids, guaranteeing the graph stays a DAG in id order.
 *
 * Evaluation runs on a lazily compiled plan (eval_plan.hpp): the first
 * evaluate()/evaluateAll() flattens the graph into a contiguous
 * instruction stream (with dead-node elimination and inc-chain fusion
 * on the output path) and caches it. Structural mutation (adding
 * blocks, marking outputs) invalidates the plan; setConfig() does not,
 * because config values are read live at evaluation time.
 *
 * Thread safety: the const evaluation path (evaluate, evaluateAll,
 * evaluateBatch, evaluateInto, compile) may be called concurrently —
 * the plan cache publishes via an atomic compare-exchange, so racing
 * compilers agree on one winner. Mutation is single-writer and must
 * not overlap any other call on the same Network.
 */
class Network
{
  public:
    /** Create a network with @p num_inputs primary inputs. */
    explicit Network(size_t num_inputs);

    /** Copies recompile lazily; the plan cache is not shared. */
    Network(const Network &other);
    Network &operator=(const Network &other);
    Network(Network &&other) noexcept;
    Network &operator=(Network &&other) noexcept;
    ~Network();

    /** Node id of primary input @p i. */
    NodeId input(size_t i) const;

    /** Number of primary inputs. */
    size_t numInputs() const { return numInputs_; }

    /**
     * Add a configuration constant node (micro-weight).
     *
     * Only 0 (disable) and inf (enable) preserve shift invariance of the
     * network's data inputs; arbitrary finite values are permitted for
     * experimentation but flagged by the property checkers.
     */
    NodeId config(Time initial = INF);

    /** Reprogram a Config node (e.g., set a synaptic micro-weight). */
    void setConfig(NodeId id, Time value);

    /** Read a Config node's current value. */
    Time getConfig(NodeId id) const;

    /** Add an inc block: out = src + c. */
    NodeId inc(NodeId src, Time::rep c = 1);

    /** Add a binary min block. */
    NodeId min(NodeId a, NodeId b);

    /** Add an n-ary min block (n >= 1). */
    NodeId min(std::span<const NodeId> srcs);

    /** Add a binary max block. */
    NodeId max(NodeId a, NodeId b);

    /** Add an n-ary max block (n >= 1). */
    NodeId max(std::span<const NodeId> srcs);

    /** Add an lt block: out = a if a < b else inf. */
    NodeId lt(NodeId a, NodeId b);

    /** Declare @p id a network output (outputs are ordered). */
    void markOutput(NodeId id);

    /** Ordered output node ids. */
    const std::vector<NodeId> &outputs() const { return outputs_; }

    /** Total node count (including inputs and configs). */
    size_t size() const { return nodes_.size(); }

    /** All nodes in topological (construction) order. */
    const std::vector<Node> &nodes() const { return nodes_; }

    /** Count nodes of one kind. */
    size_t countOf(Op op) const;

    /**
     * Logic depth: the longest input-to-output path counted in functional
     * blocks (inputs and configs are depth 0; an inc counts once
     * regardless of its constant).
     */
    size_t depth() const;

    /**
     * Total delay-line cost: the sum of all inc constants. In a GRL
     * implementation this is the number of shift-register stages.
     */
    Time::rep totalIncStages() const;

    /**
     * Compile (or fetch) the cached evaluation plan. Idempotent and
     * safe under concurrent callers; called implicitly by the
     * evaluation methods. Exposed so batch drivers and constructions
     * can pay the one-time cost eagerly, and so tests can inspect the
     * DCE / inc-fusion statistics.
     */
    const EvalPlan &compile() const;

    /** True iff a compiled plan is currently cached. */
    bool isCompiled() const;

    /**
     * Evaluate the network on one input volley (on the compiled plan).
     *
     * @param inputs  One Time per primary input.
     * @return One Time per marked output, in markOutput() order.
     */
    std::vector<Time> evaluate(std::span<const Time> inputs) const;

    /**
     * Zero-allocation evaluate(): node values go into @p scratch and
     * the outputs are gathered into @p out (resized to the output
     * count). With a warmed-up scratch and out, the steady-state path
     * performs no heap allocation at all — the form the batch engines
     * use per worker lane.
     */
    void evaluateInto(std::span<const Time> inputs, EvalScratch &scratch,
                      std::vector<Time> &out) const;

    /**
     * Evaluate and return the value of every node (inputs, configs and
     * internal blocks included), indexed by NodeId. Used by the trace
     * simulator, the GRL equivalence tests, and network debugging.
     * Runs on the compiled plan's full (non-DCE'd) program.
     */
    std::vector<Time> evaluateAll(std::span<const Time> inputs) const;

    /**
     * Reference interpreter: the direct walk over the node graph the
     * compiled plan must reproduce bit-for-bit. Kept as the oracle for
     * the differential tests and the baseline for the speedup benches.
     */
    std::vector<Time>
    evaluateInterpreted(std::span<const Time> inputs) const;

    /** Reference interpreter for evaluateAll(). */
    std::vector<Time>
    evaluateAllInterpreted(std::span<const Time> inputs) const;

    /**
     * Evaluate a batch of independent input volleys, fanned out across
     * up to @p nthreads lanes of the shared pool (0 = ST_NUM_THREADS
     * or the hardware concurrency, 1 = serial loop). Evaluation is
     * pure, so out[i] == evaluate(batch[i]) bit-for-bit — including
     * the tie-blocking law lt(a, a) = inf — for every thread count.
     */
    std::vector<std::vector<Time>>
    evaluateBatch(std::span<const std::vector<Time>> batch,
                  size_t nthreads = 0) const;

    /**
     * Embed a copy of @p sub into this network.
     *
     * @param sub      Network to embed.
     * @param actuals  One existing node of *this* per input of @p sub.
     * @return The ids (in this network) corresponding to @p sub's outputs.
     *
     * Config nodes of @p sub are copied with their current values and
     * remain independently programmable via the returned network.
     */
    std::vector<NodeId> append(const Network &sub,
                               std::span<const NodeId> actuals);

    /** Attach a debug label to a node (used by DOT export). */
    void setLabel(NodeId id, std::string label);

    /** Read a node's label ("" if unset). */
    const std::string &label(NodeId id) const;

  private:
    NodeId addNode(Node node);
    void checkId(NodeId id) const;

    /** Drop the cached plan after a structural change (single-writer,
     *  like all mutation — see the class comment). */
    void invalidatePlan();

    std::vector<Node> nodes_;
    std::vector<std::string> labels_;
    std::vector<NodeId> outputs_;
    size_t numInputs_;

    /**
     * Lazily compiled plan, published with a compare-exchange so
     * concurrent const evaluators can build it without locking (losers
     * discard their build, as in Column's model cache).
     */
    mutable std::atomic<const EvalPlan *> plan_{nullptr};
};

} // namespace st

#endif // ST_CORE_NETWORK_HPP
