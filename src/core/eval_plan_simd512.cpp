/**
 * @file
 * AVX-512 body of EvalProgram::runBlock (x86-64 only; this translation
 * unit is compiled with -mavx512f and entered only after the caller's
 * runtime CPUID probe succeeds, so the rest of the library stays at
 * the baseline ISA).
 *
 * A full block is kEvalBlockLanes == 8 volleys, so every value row is
 * exactly one 512-bit vector of eight uint64 times — half the loads,
 * stores and ALU ops of the two-vector AVX2 body. Unlike AVX2, the
 * 512-bit ISA has native unsigned 64-bit min/max and compares, so the
 * sign-bias trick disappears: min/max are single instructions and the
 * lt gate is one unsigned compare-into-mask plus a mask blend.
 * Saturating delay addition selects inf wherever the wrapped sum
 * compares (unsigned) below its operand — exact for every bit pattern
 * including the all-ones inf representation, same as the scalar body.
 */

#include "core/eval_plan.hpp"

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "core/network.hpp"

namespace st::detail {

namespace {

static_assert(kEvalBlockLanes == 8,
              "the AVX-512 executor hard-codes one 8-wide vector per row");

inline __m512i
loadRow(const Time *p)
{
    // __m512i loads may alias any object representation, and Time is
    // a single trivially copyable uint64.
    return _mm512_loadu_si512(p);
}

inline void
storeRow(Time *p, __m512i r)
{
    _mm512_storeu_si512(p, r);
}

inline __m512i
vinf()
{
    return _mm512_set1_epi64(-1);
}

/** a where a < b (unsigned), inf elsewhere (the lt gate). */
inline __m512i
vlt(__m512i a, __m512i b)
{
    const __mmask8 lt = _mm512_cmplt_epu64_mask(a, b);
    return _mm512_mask_blend_epi64(lt, vinf(), a);
}

/** Saturating x + d: lanes whose sum wrapped land exactly on inf. */
inline __m512i
vsat(__m512i x, Time::rep d)
{
    const __m512i dv = _mm512_set1_epi64(static_cast<long long>(d));
    const __m512i s = _mm512_add_epi64(x, dv);
    const __mmask8 wrapped = _mm512_cmplt_epu64_mask(s, x);
    return _mm512_mask_blend_epi64(wrapped, s, vinf());
}

} // namespace

void
runBlockLanes8Avx512(const EvalProgramView &prog, std::span<const Node> nodes,
                     std::span<const std::vector<Time>> batch,
                     std::vector<Time> &values)
{
    constexpr size_t lanes = kEvalBlockLanes;
    values.resize(prog.op.size() * lanes);
    Time *v = values.data();
    const uint32_t *slot = prog.argSlot.data();
    const Time::rep *dly = prog.argDelay.data();
    auto rowOf = [&](uint32_t s) { return v + size_t{s} * lanes; };
    size_t i = 0;
    for (uint32_t runedge : prog.runEnd) {
        const size_t end = runedge;
        switch (static_cast<PlanOp>(prog.op[i])) {
          case PlanOp::Input:
            // Lanes live in separate volley vectors here, so this
            // stays a scalar gather.
            for (; i < end; ++i) {
                Time *o = v + i * lanes;
                const uint32_t src = prog.extra[i];
                for (size_t l = 0; l < lanes; ++l)
                    o[l] = batch[l][src];
            }
            break;
          case PlanOp::Config:
            for (; i < end; ++i) {
                storeRow(v + i * lanes,
                         _mm512_set1_epi64(static_cast<long long>(
                             std::bit_cast<Time::rep>(
                                 nodes[prog.extra[i]].configValue))));
            }
            break;
          case PlanOp::Min2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                storeRow(v + i * lanes,
                         _mm512_min_epu64(loadRow(rowOf(slot[e])),
                                          loadRow(rowOf(slot[e + 1]))));
            }
            break;
          }
          case PlanOp::Max2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                storeRow(v + i * lanes,
                         _mm512_max_epu64(loadRow(rowOf(slot[e])),
                                          loadRow(rowOf(slot[e + 1]))));
            }
            break;
          }
          case PlanOp::Lt2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                storeRow(v + i * lanes,
                         vlt(loadRow(rowOf(slot[e])),
                             loadRow(rowOf(slot[e + 1]))));
            }
            break;
          }
          case PlanOp::Min:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const uint32_t eend = prog.argBeg[i + 1];
                __m512i m = vsat(loadRow(rowOf(slot[beg])), dly[beg]);
                for (uint32_t e = beg + 1; e < eend; ++e) {
                    m = _mm512_min_epu64(
                        m, vsat(loadRow(rowOf(slot[e])), dly[e]));
                }
                storeRow(v + i * lanes, m);
            }
            break;
          case PlanOp::Max:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const uint32_t eend = prog.argBeg[i + 1];
                __m512i m = vsat(loadRow(rowOf(slot[beg])), dly[beg]);
                for (uint32_t e = beg + 1; e < eend; ++e) {
                    m = _mm512_max_epu64(
                        m, vsat(loadRow(rowOf(slot[e])), dly[e]));
                }
                storeRow(v + i * lanes, m);
            }
            break;
          case PlanOp::Lt:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const __m512i a =
                    vsat(loadRow(rowOf(slot[beg])), dly[beg]);
                const __m512i b =
                    vsat(loadRow(rowOf(slot[beg + 1])), dly[beg + 1]);
                storeRow(v + i * lanes, vlt(a, b));
            }
            break;
        }
    }
}

} // namespace st::detail
