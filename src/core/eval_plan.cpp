#include "core/eval_plan.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "core/algebra.hpp"
#include "core/network.hpp"
#include "obs/obs.hpp"

namespace st {

namespace {

/**
 * Saturating delay accumulation. Folding inc(inc(v, d1), d2) into
 * v + (d1 (+) d2) is exact: if the clamped sum stays below 2^64-1 both
 * forms add the same constant; if either form reaches or passes the
 * all-ones pattern, both land on inf (Time::operator+ saturates on
 * wrap, and the all-ones pattern *is* the inf representation).
 */
Time::rep
foldDelay(Time::rep a, Time::rep b)
{
    Time::rep sum = a + b;
    if (sum < a)
        return std::numeric_limits<Time::rep>::max();
    return sum;
}

/** An operand chased through its inc chain to the producing block. */
struct ResolvedEdge
{
    NodeId root = 0;
    Time::rep delay = 0;
    size_t hops = 0; //!< inc blocks folded away
};

ResolvedEdge
resolveThroughIncs(const std::vector<Node> &nodes, NodeId src)
{
    ResolvedEdge edge;
    while (nodes[src].op == Op::Inc) {
        edge.delay = foldDelay(edge.delay, nodes[src].delay);
        src = nodes[src].fanin[0];
        ++edge.hops;
    }
    edge.root = src;
    return edge;
}

/** Append one instruction header; operands follow via pushEdge. */
void
pushInstr(EvalProgram &prog, PlanOp op, uint32_t extra)
{
    prog.op.push_back(static_cast<uint8_t>(op));
    prog.extra.push_back(extra);
}

void
pushEdge(EvalProgram &prog, uint32_t slot, Time::rep delay)
{
    prog.argSlot.push_back(slot);
    prog.argDelay.push_back(delay);
}

void
sealInstr(EvalProgram &prog)
{
    prog.argBeg.push_back(static_cast<uint32_t>(prog.argSlot.size()));
}

/**
 * The instruction kind for a node all of whose operand edges carry
 * zero delay: binary min/max/lt take the fast forms.
 */
PlanOp
planOpOf(Op op, size_t arity)
{
    switch (op) {
      case Op::Min:
        return arity == 2 ? PlanOp::Min2 : PlanOp::Min;
      case Op::Max:
        return arity == 2 ? PlanOp::Max2 : PlanOp::Max;
      case Op::Lt:
        return PlanOp::Lt2;
      default:
        return PlanOp::Min; // Inc compiles to a 1-ary min edge
    }
}

/** True iff any of @p node's operand edges folds to a nonzero delay. */
bool
hasDelayedOperand(const std::vector<Node> &nodes, const Node &node)
{
    for (NodeId src : node.fanin) {
        if (resolveThroughIncs(nodes, src).delay != 0)
            return true;
    }
    return false;
}

/** The instruction kind @p node compiles to in the live program. */
PlanOp
liveOpOf(const std::vector<Node> &nodes, const Node &node)
{
    switch (node.op) {
      case Op::Input:
        return PlanOp::Input;
      case Op::Config:
        return PlanOp::Config;
      case Op::Inc:
        return PlanOp::Min; // 1-ary, carries the folded chain delay
      case Op::Lt:
        return hasDelayedOperand(nodes, node) ? PlanOp::Lt
                                              : PlanOp::Lt2;
      case Op::Min:
        if (node.fanin.size() != 2 || hasDelayedOperand(nodes, node))
            return PlanOp::Min;
        return PlanOp::Min2;
      default: // Op::Max
        if (node.fanin.size() != 2 || hasDelayedOperand(nodes, node))
            return PlanOp::Max;
        return PlanOp::Max2;
    }
}

/** Chop the finished instruction stream into maximal same-op runs. */
void
finalizeRuns(EvalProgram &prog)
{
    const size_t n = prog.op.size();
    for (size_t i = 1; i < n; ++i) {
        if (prog.op[i] != prog.op[i - 1])
            prog.runEnd.push_back(static_cast<uint32_t>(i));
    }
    if (n > 0)
        prog.runEnd.push_back(static_cast<uint32_t>(n));
}

/**
 * The full program evaluates every node in id order, so slot i is
 * exactly NodeId i — what evaluateAll() and the trace-equivalence
 * tests index by. Inc nodes become 1-ary min instructions whose single
 * edge carries the delay (tmin(inf, v + c) == v + c).
 */
EvalProgram
buildFullProgram(const std::vector<Node> &nodes,
                 const std::vector<NodeId> &outputs)
{
    EvalProgram prog;
    const size_t n = nodes.size();
    prog.op.reserve(n);
    prog.extra.reserve(n);
    prog.argBeg.reserve(n + 1);
    prog.argBeg.push_back(0);
    for (size_t i = 0; i < n; ++i) {
        const Node &node = nodes[i];
        switch (node.op) {
          case Op::Input:
            pushInstr(prog, PlanOp::Input, static_cast<uint32_t>(i));
            break;
          case Op::Config:
            pushInstr(prog, PlanOp::Config, static_cast<uint32_t>(i));
            break;
          case Op::Inc:
            pushInstr(prog, PlanOp::Min, 0);
            pushEdge(prog, node.fanin[0], node.delay);
            break;
          default:
            pushInstr(prog, planOpOf(node.op, node.fanin.size()), 0);
            for (NodeId src : node.fanin)
                pushEdge(prog, src, 0);
            break;
        }
        sealInstr(prog);
    }
    prog.outSlot.assign(outputs.begin(), outputs.end());
    finalizeRuns(prog);
    return prog;
}

} // namespace

void
runProgram(const EvalProgramView &prog, std::span<const Node> nodes,
           std::span<const Time> inputs, std::vector<Time> &values)
{
    // Three relaxed adds per volley — noise against the instruction
    // walk below, but they expose the dispatch economics (how long
    // the same-op runs actually are) that the run scheduler exists
    // to maximize.
    ST_OBS_ADD("eval.run.calls", 1);
    ST_OBS_ADD("eval.run.dispatches", prog.runEnd.size());
    ST_OBS_ADD("eval.run.instructions", prog.op.size());
    const std::span<const uint8_t> op = prog.op;
    const std::span<const uint32_t> extra = prog.extra;
    const std::span<const uint32_t> argBeg = prog.argBeg;
    const std::span<const uint32_t> runEnd = prog.runEnd;
    values.resize(op.size());
    Time *v = values.data();
    const uint32_t *slot = prog.argSlot.data();
    const Time::rep *dly = prog.argDelay.data();
    constexpr Time::rep inf = std::numeric_limits<Time::rep>::max();
    // The hot path works on raw representations: Time's total order is
    // the plain uint64 order (inf is the all-ones maximum), so min, max
    // and lt reduce to branch-free integer selects.
    auto arg = [&](uint32_t e) -> Time::rep {
        // Saturating operand add without testing for inf: a finite
        // overflow and inf + positive both wrap below the original
        // value, and inf + 0 already is the inf pattern. The select
        // compiles to a cmov, so inf-heavy volleys cost no branch
        // mispredictions (the interpreter-beating difference on the
        // Fig. 12 nets, whose values go inf constantly).
        const Time::rep a = std::bit_cast<Time::rep>(v[slot[e]]);
        const Time::rep s = a + dly[e];
        return s < a ? inf : s;
    };
    auto raw = [&](uint32_t e) -> Time::rep {
        return std::bit_cast<Time::rep>(v[slot[e]]);
    };
    auto put = [&](size_t i, Time::rep r) {
        v[i] = std::bit_cast<Time>(r);
    };
    // Dispatch once per same-op run, not once per instruction: the
    // live program is scheduled so that each dataflow level's min2s,
    // max2s, lts, ... sit adjacent, turning the op switch from an
    // unpredictable per-node indirect branch into a per-run one and
    // letting the out-of-order core overlap the (independent)
    // iterations inside a run.
    size_t i = 0;
    for (uint32_t runedge : runEnd) {
        const size_t end = runedge;
        switch (static_cast<PlanOp>(op[i])) {
          case PlanOp::Input:
            for (; i < end; ++i)
                v[i] = inputs[extra[i]];
            break;
          case PlanOp::Config:
            for (; i < end; ++i)
                v[i] = nodes[extra[i]].configValue;
            break;
          case PlanOp::Min2: {
            // The fast binary forms own exactly two zero-delay edges
            // each, laid out back to back, so the edge cursor strides
            // by two with no argBeg or delay loads at all.
            uint32_t e = argBeg[i];
            for (; i < end; ++i, e += 2)
                put(i, std::min(raw(e), raw(e + 1)));
            break;
          }
          case PlanOp::Max2: {
            uint32_t e = argBeg[i];
            for (; i < end; ++i, e += 2)
                put(i, std::max(raw(e), raw(e + 1)));
            break;
          }
          case PlanOp::Lt2: {
            uint32_t e = argBeg[i];
            for (; i < end; ++i, e += 2) {
                const Time::rep a = raw(e);
                put(i, a < raw(e + 1) ? a : inf);
            }
            break;
          }
          case PlanOp::Min:
            for (; i < end; ++i) {
                const uint32_t beg = argBeg[i];
                Time::rep m = arg(beg);
                for (uint32_t e = beg + 1; e < argBeg[i + 1]; ++e)
                    m = std::min(m, arg(e));
                put(i, m);
            }
            break;
          case PlanOp::Max:
            for (; i < end; ++i) {
                const uint32_t beg = argBeg[i];
                Time::rep m = arg(beg);
                for (uint32_t e = beg + 1; e < argBeg[i + 1]; ++e)
                    m = std::max(m, arg(e));
                put(i, m);
            }
            break;
          case PlanOp::Lt:
            for (; i < end; ++i) {
                const uint32_t beg = argBeg[i];
                const Time::rep a = arg(beg);
                put(i, a < arg(beg + 1) ? a : inf);
            }
            break;
        }
    }
}

void
EvalProgram::run(std::span<const Node> nodes,
                 std::span<const Time> inputs,
                 std::vector<Time> &values) const
{
    runProgram(view(), nodes, inputs, values);
}

namespace {

/**
 * Lane-blocked executor body, shared by the fixed-width instantiation
 * (block loops fully unrolled) and the runtime-width tail-block one
 * (kLanes == 0). Row layout and per-op semantics are documented on
 * EvalProgram::runBlock.
 */
template <size_t kLanes>
void
runBlockImpl(const EvalProgramView &prog, std::span<const Node> nodes,
             std::span<const std::vector<Time>> batch,
             std::vector<Time> &values)
{
    const size_t lanes = kLanes == 0 ? batch.size() : kLanes;
    values.resize(prog.op.size() * lanes);
    Time *v = values.data();
    const uint32_t *slot = prog.argSlot.data();
    const Time::rep *dly = prog.argDelay.data();
    constexpr Time::rep inf = std::numeric_limits<Time::rep>::max();
    auto rowOf = [&](uint32_t s) { return v + size_t{s} * lanes; };
    auto get = [](const Time *row, size_t l) {
        return std::bit_cast<Time::rep>(row[l]);
    };
    auto sat = [](Time::rep x, Time::rep d) {
        const Time::rep s = x + d;
        return s < x ? inf : s;
    };
    size_t i = 0;
    for (uint32_t runedge : prog.runEnd) {
        const size_t end = runedge;
        switch (static_cast<PlanOp>(prog.op[i])) {
          case PlanOp::Input:
            for (; i < end; ++i) {
                Time *o = v + i * lanes;
                const uint32_t src = prog.extra[i];
                for (size_t l = 0; l < lanes; ++l)
                    o[l] = batch[l][src];
            }
            break;
          case PlanOp::Config:
            for (; i < end; ++i) {
                const Time c = nodes[prog.extra[i]].configValue;
                Time *o = v + i * lanes;
                for (size_t l = 0; l < lanes; ++l)
                    o[l] = c;
            }
            break;
          case PlanOp::Min2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                const Time *a = rowOf(slot[e]);
                const Time *b = rowOf(slot[e + 1]);
                Time *o = v + i * lanes;
                for (size_t l = 0; l < lanes; ++l)
                    o[l] = std::bit_cast<Time>(
                        std::min(get(a, l), get(b, l)));
            }
            break;
          }
          case PlanOp::Max2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                const Time *a = rowOf(slot[e]);
                const Time *b = rowOf(slot[e + 1]);
                Time *o = v + i * lanes;
                for (size_t l = 0; l < lanes; ++l)
                    o[l] = std::bit_cast<Time>(
                        std::max(get(a, l), get(b, l)));
            }
            break;
          }
          case PlanOp::Lt2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                const Time *a = rowOf(slot[e]);
                const Time *b = rowOf(slot[e + 1]);
                Time *o = v + i * lanes;
                for (size_t l = 0; l < lanes; ++l) {
                    const Time::rep x = get(a, l);
                    o[l] =
                        std::bit_cast<Time>(x < get(b, l) ? x : inf);
                }
            }
            break;
          }
          case PlanOp::Min:
            // Lane-outer accumulation keeps the running value in a
            // register across the edge walk (no output-row re-reads).
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const uint32_t eend = prog.argBeg[i + 1];
                Time *o = v + i * lanes;
                for (size_t l = 0; l < lanes; ++l) {
                    Time::rep m = sat(get(rowOf(slot[beg]), l),
                                      dly[beg]);
                    for (uint32_t e = beg + 1; e < eend; ++e)
                        m = std::min(
                            m, sat(get(rowOf(slot[e]), l), dly[e]));
                    o[l] = std::bit_cast<Time>(m);
                }
            }
            break;
          case PlanOp::Max:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const uint32_t eend = prog.argBeg[i + 1];
                Time *o = v + i * lanes;
                for (size_t l = 0; l < lanes; ++l) {
                    Time::rep m = sat(get(rowOf(slot[beg]), l),
                                      dly[beg]);
                    for (uint32_t e = beg + 1; e < eend; ++e)
                        m = std::max(
                            m, sat(get(rowOf(slot[e]), l), dly[e]));
                    o[l] = std::bit_cast<Time>(m);
                }
            }
            break;
          case PlanOp::Lt:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const Time *a = rowOf(slot[beg]);
                const Time *b = rowOf(slot[beg + 1]);
                const Time::rep da = dly[beg];
                const Time::rep db = dly[beg + 1];
                Time *o = v + i * lanes;
                for (size_t l = 0; l < lanes; ++l) {
                    const Time::rep x = sat(get(a, l), da);
                    o[l] = std::bit_cast<Time>(
                        x < sat(get(b, l), db) ? x : inf);
                }
            }
            break;
        }
    }
}

#ifdef ST_EVAL_PLAN_SIMD

/** One-time CPUID probe guarding the AVX2 executor body. */
bool
cpuHasAvx2()
{
    static const bool ok = __builtin_cpu_supports("avx2");
    return ok;
}

#ifdef ST_EVAL_PLAN_SIMD512

/** One-time CPUID probe guarding the AVX-512 executor body. */
bool
cpuHasAvx512()
{
    static const bool ok = __builtin_cpu_supports("avx512f");
    return ok;
}

#endif // ST_EVAL_PLAN_SIMD512
#endif // ST_EVAL_PLAN_SIMD

} // namespace

const char *
evalSimdBodyName()
{
#if defined(__aarch64__)
    return "neon";
#else
#ifdef ST_EVAL_PLAN_SIMD
#ifdef ST_EVAL_PLAN_SIMD512
    if (cpuHasAvx512())
        return "avx512";
#endif
    if (cpuHasAvx2())
        return "avx2";
#endif
    return "scalar";
#endif // __aarch64__
}

void
runProgramBlock(const EvalProgramView &prog,
                std::span<const Node> nodes,
                std::span<const std::vector<Time>> batch,
                std::vector<Time> &values)
{
    if (batch.size() == kEvalBlockLanes) {
#if defined(__aarch64__)
        // NEON is baseline on aarch64: compile-time dispatch, no probe.
        ST_OBS_ADD("eval.block.neon", 1);
        detail::runBlockLanes8Neon(prog, nodes, batch, values);
        return;
#else
#ifdef ST_EVAL_PLAN_SIMD
#ifdef ST_EVAL_PLAN_SIMD512
        // Widest ISA first: the probes are one-time statics, so the
        // steady state is two predictable branches.
        if (cpuHasAvx512()) {
            ST_OBS_ADD("eval.block.avx512", 1);
            detail::runBlockLanes8Avx512(prog, nodes, batch, values);
            return;
        }
#endif
        if (cpuHasAvx2()) {
            ST_OBS_ADD("eval.block.avx2", 1);
            detail::runBlockLanes8Avx2(prog, nodes, batch, values);
            return;
        }
#endif
        ST_OBS_ADD("eval.block.scalar", 1);
        runBlockImpl<kEvalBlockLanes>(prog, nodes, batch, values);
#endif // __aarch64__
    } else {
        ST_OBS_ADD("eval.block.tail", 1);
        runBlockImpl<0>(prog, nodes, batch, values);
    }
}

void
EvalProgram::runBlock(std::span<const Node> nodes,
                      std::span<const std::vector<Time>> batch,
                      std::vector<Time> &values) const
{
    runProgramBlock(view(), nodes, batch, values);
}

EvalPlan
buildEvalPlan(const Network &net)
{
    ST_TRACE_SPAN("eval.compile");
    const std::vector<Node> &nodes = net.nodes();
    const std::vector<NodeId> &outputs = net.outputs();
    const size_t n = nodes.size();

    EvalPlan plan;
    plan.numNodes = n;
    plan.numInputs = net.numInputs();
    plan.full = buildFullProgram(nodes, outputs);

    // Liveness: a node is live iff its *own* value is needed — it is
    // an output, or a live non-inc consumer reaches it through inc
    // resolution. Inc nodes on the way are folded into edge delays and
    // stay dead unless they are outputs themselves. The reverse-id
    // sweep is a correct dataflow order because fanins (and hence inc
    // roots) always have smaller ids.
    std::vector<uint8_t> live(n, 0);
    for (NodeId out : outputs)
        live[out] = 1;
    for (size_t i = n; i-- > 0;) {
        if (!live[i])
            continue;
        const Node &node = nodes[i];
        if (node.op == Op::Inc) {
            live[resolveThroughIncs(nodes, node.fanin[0]).root] = 1;
        } else {
            for (NodeId src : node.fanin)
                live[resolveThroughIncs(nodes, src).root] = 1;
        }
    }

    // Schedule the live nodes by (dataflow level, op kind, id): any
    // order that places operand roots first is correct, and grouping a
    // level's same-kind instructions adjacently gives the executor
    // long homogeneous runs (one dispatch per run). Levels are
    // computed in id order, so operand roots — always smaller ids —
    // are done first; stable_sort keeps id order inside a group, so
    // the schedule is a pure function of the graph.
    std::vector<uint32_t> level(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (!live[i])
            continue;
        const Node &node = nodes[i];
        uint32_t lvl = 0;
        if (node.op == Op::Inc) {
            lvl = level[resolveThroughIncs(nodes, node.fanin[0]).root]
                + 1;
        } else {
            for (NodeId src : node.fanin)
                lvl = std::max(
                    lvl, level[resolveThroughIncs(nodes, src).root] + 1);
        }
        level[i] = lvl;
    }
    std::vector<uint8_t> kind(n, 0);
    std::vector<uint32_t> sched;
    for (size_t i = 0; i < n; ++i) {
        if (live[i]) {
            kind[i] = static_cast<uint8_t>(liveOpOf(nodes, nodes[i]));
            sched.push_back(static_cast<uint32_t>(i));
        }
    }
    std::stable_sort(sched.begin(), sched.end(),
                     [&](uint32_t a, uint32_t b) {
                         if (level[a] != level[b])
                             return level[a] < level[b];
                         return kind[a] < kind[b];
                     });

    constexpr uint32_t kDead = ~uint32_t{0};
    std::vector<uint32_t> slotOf(n, kDead);
    for (size_t k = 0; k < sched.size(); ++k)
        slotOf[sched[k]] = static_cast<uint32_t>(k);
    plan.deadNodes = n - sched.size();

    EvalProgram &prog = plan.live;
    prog.op.reserve(sched.size());
    prog.extra.reserve(sched.size());
    prog.argBeg.reserve(sched.size() + 1);
    prog.argBeg.push_back(0);
    auto emitEdge = [&](NodeId src, Time::rep extra_delay) {
        ResolvedEdge edge = resolveThroughIncs(nodes, src);
        pushEdge(prog, slotOf[edge.root],
                 foldDelay(edge.delay, extra_delay));
        plan.fusedIncs += edge.hops;
    };
    for (uint32_t i : sched) {
        const Node &node = nodes[i];
        switch (node.op) {
          case Op::Input:
            pushInstr(prog, PlanOp::Input, static_cast<uint32_t>(i));
            break;
          case Op::Config:
            pushInstr(prog, PlanOp::Config, static_cast<uint32_t>(i));
            plan.configNodes.push_back(i);
            break;
          case Op::Inc:
            // A live inc (an output tap): 1-ary min over its chain.
            pushInstr(prog, PlanOp::Min, 0);
            emitEdge(node.fanin[0], node.delay);
            break;
          default:
            pushInstr(prog, static_cast<PlanOp>(kind[i]), 0);
            for (NodeId src : node.fanin)
                emitEdge(src, 0);
            break;
        }
        sealInstr(prog);
    }
    finalizeRuns(prog);
    prog.outSlot.reserve(outputs.size());
    for (NodeId out : outputs)
        prog.outSlot.push_back(slotOf[out]);
    ST_OBS_ADD("eval.compile.nodes", n);
    ST_OBS_ADD("eval.compile.dead_nodes", plan.deadNodes);
    ST_OBS_ADD("eval.compile.fused_incs", plan.fusedIncs);
    ST_OBS_ADD("eval.compile.live_instrs", prog.size());
    return plan;
}

} // namespace st
