/**
 * @file
 * Checkers for the defining properties of space-time functions
 * (paper Sec. III.C): causality, invariance, and bounded history.
 *
 * These operate on black-box functions (any callable over volleys) and,
 * via adapters, on single-output Networks and FunctionTables. They are the
 * backbone of the property-test suites: e.g., "lt is causal and invariant
 * but NOT bounded" is a paper-faithful subtlety these checkers pin down.
 *
 * Exhaustive checkers enumerate every volley over the window
 * {0..k, inf}^arity; randomized checkers sample larger spaces with a
 * seeded Rng so failures are reproducible.
 */

#ifndef ST_CORE_PROPERTIES_HPP
#define ST_CORE_PROPERTIES_HPP

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "core/time.hpp"
#include "util/rng.hpp"

namespace st {

/** Result of a property check; counterexample is empty when it holds. */
struct PropertyReport
{
    bool holds = true;
    std::string counterexample;

    explicit operator bool() const { return holds; }
};

/** Black-box function signature shared by the checkers. */
using StFn = std::function<Time(std::span<const Time>)>;

/** Wrap a single-output network as a black-box function. */
StFn fnOf(const Network &net);

/** Format a volley like "[0, 3, inf, 1]" for counterexample messages. */
std::string volleyStr(std::span<const Time> xs);

/**
 * Causality (exhaustive over {0..k, inf}^arity):
 *  (a) if z != inf then z >= x_min, and
 *  (b) replacing any x_i > z with inf leaves z unchanged.
 */
PropertyReport checkCausality(size_t arity, Time::rep k, const StFn &fn);

/**
 * Invariance (exhaustive): F(x + c) = F(x) + c for c in 1..shifts,
 * over all volleys in {0..k, inf}^arity.
 */
PropertyReport checkInvariance(size_t arity, Time::rep k, const StFn &fn,
                               Time::rep shifts = 3);

/**
 * Bounded history with window @p window (exhaustive over
 * {0..k, inf}^arity): any x_j < x_max - window can be replaced by inf
 * without changing the output, where x_max is the latest finite input.
 * Choose k > window or the check is vacuous.
 */
PropertyReport checkBoundedHistory(size_t arity, Time::rep k,
                                   const StFn &fn, Time::rep window);

/**
 * Randomized causality check: @p trials volleys with entries in
 * [0, limit] u {inf} (inf with probability p_inf).
 */
PropertyReport checkCausalityRandom(size_t arity, Time::rep limit,
                                    const StFn &fn, Rng &rng,
                                    size_t trials = 1000,
                                    double p_inf = 0.15);

/** Randomized invariance check (same sampling scheme). */
PropertyReport checkInvarianceRandom(size_t arity, Time::rep limit,
                                     const StFn &fn, Rng &rng,
                                     size_t trials = 1000,
                                     double p_inf = 0.15);

/**
 * Causality on one *observed* (input, output) volley pair: no finite
 * output may precede the earliest input (an all-quiet input admits no
 * finite output at all — no spontaneous spikes). This is the one-shot
 * form the runtime guards apply at layer boundaries, where only the
 * pair is available, not the function.
 */
PropertyReport checkCausalityObserved(std::span<const Time> in,
                                      std::span<const Time> out);

/**
 * Bounded history on one observed pair: no finite output may trail the
 * latest finite input by more than @p window. A finite output from an
 * all-quiet input also violates (nothing within any window drives it).
 */
PropertyReport checkBoundedObserved(std::span<const Time> in,
                                    std::span<const Time> out,
                                    Time::rep window);

/**
 * Shift consistency of two observed outputs: @p shifted_out (produced
 * from the input shifted later by @p c) must equal @p base_out shifted
 * by @p c elementwise — the one-sample witness of invariance the
 * runtime guard spot-checks.
 */
PropertyReport checkShiftConsistency(std::span<const Time> base_out,
                                     std::span<const Time> shifted_out,
                                     Time::rep c);

/**
 * Monotonicity (exhaustive): delaying any input never makes the output
 * earlier (x <= x' pointwise implies F(x) <= F(x')).
 *
 * min, max and inc are monotone, so every lt-free network — in
 * particular every race-logic path network — is monotone; lt is the one
 * primitive that breaks it (delaying b past a revives a's passage).
 * This separates the "pure racing" fragment from full s-t computation.
 */
PropertyReport checkMonotonicity(size_t arity, Time::rep k,
                                 const StFn &fn);

} // namespace st

#endif // ST_CORE_PROPERTIES_HPP
