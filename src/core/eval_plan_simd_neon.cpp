/**
 * @file
 * NEON body of EvalProgram::runBlock (aarch64 only). NEON is baseline
 * on aarch64, so unlike the x86 bodies there is no runtime probe and
 * no special compile flag — runBlock dispatches here unconditionally
 * at compile time (the CI arm64 job runs the compiled-evaluator
 * differential tests against this body on every PR).
 *
 * A full block is kEvalBlockLanes == 8 volleys, so every value row is
 * four 128-bit vectors of two uint64 times each. aarch64 NEON has
 * unsigned 64-bit compares (cmhi) but no 64-bit min/max, so min/max
 * are one compare + one bit-select per vector. Saturating delay
 * addition keeps the branchless form of the scalar executor: a wrapped
 * sum compares (unsigned) below its operand, and OR-ing the resulting
 * all-ones compare mask into the sum lands exactly on inf.
 */

#include "core/eval_plan.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <bit>
#include <cstdint>

#include "core/network.hpp"

namespace st::detail {

namespace {

static_assert(kEvalBlockLanes == 8,
              "the NEON executor hard-codes four 2-wide vectors per row");

/** One value row of a full block: 8 lanes as four 2x64 vectors. */
struct Row
{
    uint64x2_t v0, v1, v2, v3;
};

inline Row
loadRow(const Time *p)
{
    // Time is a single trivially copyable uint64, so the row is a
    // plain array of eight uint64 lanes.
    const auto *u = reinterpret_cast<const uint64_t *>(p);
    return {vld1q_u64(u), vld1q_u64(u + 2), vld1q_u64(u + 4),
            vld1q_u64(u + 6)};
}

inline void
storeRow(Time *p, Row r)
{
    auto *u = reinterpret_cast<uint64_t *>(p);
    vst1q_u64(u, r.v0);
    vst1q_u64(u + 2, r.v1);
    vst1q_u64(u + 4, r.v2);
    vst1q_u64(u + 6, r.v3);
}

inline uint64x2_t
vmin(uint64x2_t a, uint64x2_t b)
{
    // bsl picks its second operand where the mask is set: a > b -> b.
    return vbslq_u64(vcgtq_u64(a, b), b, a);
}

inline uint64x2_t
vmax(uint64x2_t a, uint64x2_t b)
{
    return vbslq_u64(vcgtq_u64(a, b), a, b);
}

/** a where a < b (unsigned), inf elsewhere (the lt gate). */
inline uint64x2_t
vlt(uint64x2_t a, uint64x2_t b)
{
    return vbslq_u64(vcltq_u64(a, b), a,
                     vdupq_n_u64(~uint64_t{0}));
}

/** Saturating x + d: a wrapped sum ORs to the all-ones inf pattern. */
inline uint64x2_t
vsat(uint64x2_t x, uint64x2_t d)
{
    const uint64x2_t s = vaddq_u64(x, d);
    return vorrq_u64(s, vcgtq_u64(x, s));
}

inline Row
minRow(Row a, Row b)
{
    return {vmin(a.v0, b.v0), vmin(a.v1, b.v1), vmin(a.v2, b.v2),
            vmin(a.v3, b.v3)};
}

inline Row
maxRow(Row a, Row b)
{
    return {vmax(a.v0, b.v0), vmax(a.v1, b.v1), vmax(a.v2, b.v2),
            vmax(a.v3, b.v3)};
}

inline Row
ltRow(Row a, Row b)
{
    return {vlt(a.v0, b.v0), vlt(a.v1, b.v1), vlt(a.v2, b.v2),
            vlt(a.v3, b.v3)};
}

inline Row
satRow(Row r, Time::rep d)
{
    const uint64x2_t dv = vdupq_n_u64(static_cast<uint64_t>(d));
    return {vsat(r.v0, dv), vsat(r.v1, dv), vsat(r.v2, dv),
            vsat(r.v3, dv)};
}

} // namespace

void
runBlockLanes8Neon(const EvalProgramView &prog, std::span<const Node> nodes,
                   std::span<const std::vector<Time>> batch,
                   std::vector<Time> &values)
{
    constexpr size_t lanes = kEvalBlockLanes;
    values.resize(prog.op.size() * lanes);
    Time *v = values.data();
    const uint32_t *slot = prog.argSlot.data();
    const Time::rep *dly = prog.argDelay.data();
    auto rowOf = [&](uint32_t s) { return v + size_t{s} * lanes; };
    size_t i = 0;
    for (uint32_t runedge : prog.runEnd) {
        const size_t end = runedge;
        switch (static_cast<PlanOp>(prog.op[i])) {
          case PlanOp::Input:
            // Lanes live in separate volley vectors here, so this
            // stays a scalar gather.
            for (; i < end; ++i) {
                Time *o = v + i * lanes;
                const uint32_t src = prog.extra[i];
                for (size_t l = 0; l < lanes; ++l)
                    o[l] = batch[l][src];
            }
            break;
          case PlanOp::Config:
            for (; i < end; ++i) {
                const uint64x2_t c =
                    vdupq_n_u64(std::bit_cast<Time::rep>(
                        nodes[prog.extra[i]].configValue));
                storeRow(v + i * lanes, Row{c, c, c, c});
            }
            break;
          case PlanOp::Min2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                storeRow(v + i * lanes,
                         minRow(loadRow(rowOf(slot[e])),
                                loadRow(rowOf(slot[e + 1]))));
            }
            break;
          }
          case PlanOp::Max2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                storeRow(v + i * lanes,
                         maxRow(loadRow(rowOf(slot[e])),
                                loadRow(rowOf(slot[e + 1]))));
            }
            break;
          }
          case PlanOp::Lt2: {
            uint32_t e = prog.argBeg[i];
            for (; i < end; ++i, e += 2) {
                storeRow(v + i * lanes,
                         ltRow(loadRow(rowOf(slot[e])),
                               loadRow(rowOf(slot[e + 1]))));
            }
            break;
          }
          case PlanOp::Min:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const uint32_t eend = prog.argBeg[i + 1];
                Row m = satRow(loadRow(rowOf(slot[beg])), dly[beg]);
                for (uint32_t e = beg + 1; e < eend; ++e) {
                    m = minRow(
                        m, satRow(loadRow(rowOf(slot[e])), dly[e]));
                }
                storeRow(v + i * lanes, m);
            }
            break;
          case PlanOp::Max:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const uint32_t eend = prog.argBeg[i + 1];
                Row m = satRow(loadRow(rowOf(slot[beg])), dly[beg]);
                for (uint32_t e = beg + 1; e < eend; ++e) {
                    m = maxRow(
                        m, satRow(loadRow(rowOf(slot[e])), dly[e]));
                }
                storeRow(v + i * lanes, m);
            }
            break;
          case PlanOp::Lt:
            for (; i < end; ++i) {
                const uint32_t beg = prog.argBeg[i];
                const Row a =
                    satRow(loadRow(rowOf(slot[beg])), dly[beg]);
                const Row b = satRow(loadRow(rowOf(slot[beg + 1])),
                                     dly[beg + 1]);
                storeRow(v + i * lanes, ltRow(a, b));
            }
            break;
        }
    }
}

} // namespace st::detail

#endif // __aarch64__
