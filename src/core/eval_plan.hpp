/**
 * @file
 * Compiled evaluation plans for space-time networks.
 *
 * Network::evaluateAllInterpreted walks the node graph as built: one
 * heap-allocated fanin vector per node, a fresh value vector per call,
 * and a switch over every node kind including pure-delay incs. That is
 * fine for a dozen nodes but dominates the runtime of append()-built
 * giants (the Fig. 10 sorters and Fig. 12 SRM0 columns), where the
 * graph is large, mostly binary min/max, and rich in inc chains.
 *
 * An EvalPlan is a one-time compilation of the graph into a flat SoA
 * instruction stream evaluated with zero allocations on the steady
 * state path:
 *
 *   - flatten:    operands live in one contiguous CSR array (slot +
 *                 folded delay per edge) instead of per-node vectors;
 *   - DCE:        nodes that reach no output are dropped from the
 *                 evaluate() program (evaluateAll keeps every node);
 *   - inc fusion: chains of inc blocks collapse into the consuming
 *                 edge's delay constant, so pure-delay nodes cost
 *                 nothing at run time (saturation semantics are
 *                 preserved exactly — see foldDelay());
 *   - arena:      values are written into a caller-owned EvalScratch
 *                 whose capacity persists across volleys.
 *
 * The compiled program is bit-identical to the interpreter on every
 * input (tests/compiled_eval_test.cpp sweeps the equivalence), and
 * config nodes are read live from the Network at evaluation time, so
 * setConfig() never invalidates a plan.
 */

#ifndef ST_CORE_EVAL_PLAN_HPP
#define ST_CORE_EVAL_PLAN_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/time.hpp"

namespace st {

struct Node;
class Network;

/**
 * Reusable evaluation buffers. One per thread (or per call site); the
 * vectors keep their capacity between volleys, so a warmed-up scratch
 * makes evaluation allocation-free.
 */
struct EvalScratch
{
    std::vector<Time> values; //!< one slot per live instruction
};

/**
 * Instruction kinds of a compiled program (inc folds into edges).
 *
 * The generic forms read a folded delay per operand edge. The binary
 * fast forms require every operand delay to be zero — the overwhelming
 * majority of instructions in sorter-style networks — and skip the
 * delay array entirely.
 */
enum class PlanOp : uint8_t
{
    Input,  //!< load inputs[extra]
    Config, //!< load nodes[extra].configValue (live read)
    Min,    //!< n-ary first arrival, per-edge delays
    Max,    //!< n-ary last arrival, per-edge delays
    Lt,     //!< strictly-earlier gate, per-edge delays
    Min2,   //!< binary min, all edge delays zero
    Max2,   //!< binary max, all edge delays zero
    Lt2,    //!< strictly-earlier gate, all edge delays zero
};

/**
 * Non-owning view of a flattened instruction stream: the exact array
 * septet an EvalProgram owns, as spans. The executors (scalar, SIMD,
 * lane-blocked) all run on this form, so a program whose arrays live
 * in an mmap'd STMF model file (model/serialize.hpp) executes in
 * place — startup is a map + fixup, not a parse + recompile — while
 * EvalProgram::run()/runBlock() delegate through view() unchanged.
 *
 * Invariants assumed by the executors (the compiler guarantees them;
 * the STMF loader re-validates them on every untrusted stream):
 * argBeg has size()+1 monotone entries bounding argSlot/argDelay;
 * every argSlot references a *smaller* instruction index; runEnd is
 * strictly increasing and ends at size(); Input/Config extra indexes
 * are in range.
 */
struct EvalProgramView
{
    std::span<const uint8_t> op;
    std::span<const uint32_t> extra;
    std::span<const uint32_t> argBeg;
    std::span<const uint32_t> argSlot;
    std::span<const Time::rep> argDelay;
    std::span<const uint32_t> outSlot;
    std::span<const uint32_t> runEnd;

    /** Number of instructions (== number of value slots). */
    size_t size() const { return op.size(); }
};

/**
 * Execute @p prog on one input volley; see EvalProgram::run().
 * @p nodes is read only by Config instructions (live value reads) and
 * may be any table whose configValue entries are correct at the
 * instruction's extra index — the mmap'd model path feeds a minimal
 * rebuilt table, the Network path its real node vector.
 */
void runProgram(const EvalProgramView &prog,
                std::span<const Node> nodes,
                std::span<const Time> inputs,
                std::vector<Time> &values);

/** Lane-blocked execution of @p prog; see EvalProgram::runBlock(). */
void runProgramBlock(const EvalProgramView &prog,
                     std::span<const Node> nodes,
                     std::span<const std::vector<Time>> batch,
                     std::vector<Time> &values);

/**
 * One flattened instruction stream. Instruction i writes value slot i;
 * operand edges are stored CSR-style as (slot, delay) pairs, where the
 * delay is the folded constant of any inc chain between the producing
 * instruction and this operand.
 */
struct EvalProgram
{
    std::vector<uint8_t> op;         //!< PlanOp per instruction
    std::vector<uint32_t> extra;     //!< Input/Config: source index
    std::vector<uint32_t> argBeg;    //!< CSR offsets (size instrs + 1)
    std::vector<uint32_t> argSlot;   //!< operand value slot per edge
    std::vector<Time::rep> argDelay; //!< folded edge delay
    std::vector<uint32_t> outSlot;   //!< output gather slots
    /** One-past-the-end instruction index of each maximal same-op run.
     *  The executor dispatches once per run, not once per instruction;
     *  the live program is scheduled (level-grouped) to make runs
     *  long. */
    std::vector<uint32_t> runEnd;

    /** Number of instructions (== number of value slots). */
    size_t size() const { return op.size(); }

    /** Span view of the owned arrays (what the executors consume). */
    EvalProgramView
    view() const
    {
        return {op, extra, argBeg, argSlot, argDelay, outSlot, runEnd};
    }

    /**
     * Execute the stream, resizing @p values to one slot per
     * instruction (no allocation once the capacity is warm).
     * @p nodes is the owning network's node table, read only for
     * Config instructions.
     */
    void run(std::span<const Node> nodes, std::span<const Time> inputs,
             std::vector<Time> &values) const;

    /**
     * Lane-blocked execution: evaluate the program for every volley in
     * @p batch at once. @p values is laid out slot-major — instruction
     * i's value for volley l lands in values[i * batch.size() + l] —
     * so each instruction becomes a handful of *contiguous* row
     * operations shared across the block, instead of batch.size()
     * scattered single-volley walks. Instruction-stream overhead
     * (dispatch, slot loads) is paid once per block.
     */
    void runBlock(std::span<const Node> nodes,
                  std::span<const std::vector<Time>> batch,
                  std::vector<Time> &values) const;
};

/** Block width evaluateBatch feeds to EvalProgram::runBlock. */
inline constexpr size_t kEvalBlockLanes = 8;

/**
 * The SIMD body runBlock dispatches full blocks to on this machine:
 * "avx512", "avx2", "neon" or "scalar". Health snapshots report it so
 * an operator can tell which executor a deployment actually runs.
 */
const char *evalSimdBodyName();

/** A network's compiled evaluation plan (built by Network::compile). */
struct EvalPlan
{
    /** DCE'd + inc-fused program for evaluate()/evaluateBatch(). */
    EvalProgram live;
    /** Per-node program (slot == NodeId) for evaluateAll(). */
    EvalProgram full;

    size_t numNodes = 0;  //!< node count the plan was built from
    size_t numInputs = 0; //!< input arity
    size_t deadNodes = 0; //!< nodes dropped by DCE
    /**
     * Node ids of the live program's Config instructions. Config
     * values are read live (setConfig never invalidates a plan), so
     * consumers that care — e.g. the runtime causality guard, which a
     * finite config value would trip spuriously because configured
     * constants fall independently of the input volley — must rescan
     * these nodes per use, not bake a flag in at build time.
     */
    std::vector<uint32_t> configNodes;
    /** Inc hops folded into operand edges (a chain shared by several
     *  consumers counts once per consuming edge). */
    size_t fusedIncs = 0;
};

/** Compile @p net into an evaluation plan (pure; does not cache). */
EvalPlan buildEvalPlan(const Network &net);

namespace detail {

/**
 * SIMD bodies of EvalProgram::runBlock for full blocks of
 * kEvalBlockLanes volleys, each bit-identical to the portable body on
 * every input. The x86-64 bodies live in their own translation units
 * compiled with the matching -m flag (eval_plan_simd.cpp for AVX2,
 * eval_plan_simd512.cpp for AVX-512F) and are entered only after a
 * one-time runtime CPUID probe picks the widest available ISA, so the
 * same binary runs everywhere from SSE2 up. The NEON body
 * (eval_plan_simd_neon.cpp) is baseline on aarch64 and dispatched at
 * compile time.
 */
void runBlockLanes8Avx2(const EvalProgramView &prog,
                        std::span<const Node> nodes,
                        std::span<const std::vector<Time>> batch,
                        std::vector<Time> &values);

/** AVX-512F variant: one 8x64 vector per value row. */
void runBlockLanes8Avx512(const EvalProgramView &prog,
                          std::span<const Node> nodes,
                          std::span<const std::vector<Time>> batch,
                          std::vector<Time> &values);

/** aarch64 NEON variant: four 2x64 vectors per value row. */
void runBlockLanes8Neon(const EvalProgramView &prog,
                        std::span<const Node> nodes,
                        std::span<const std::vector<Time>> batch,
                        std::vector<Time> &values);

} // namespace detail

} // namespace st

#endif // ST_CORE_EVAL_PLAN_HPP
