/**
 * @file
 * Structured diagnostics for the runtime fault / robustness layer.
 *
 * The engines historically reported failure by throwing bare
 * std::logic_error subclasses (or, for structural corruption like an
 * event agenda that never drains, by not reporting at all). st::Status
 * is the structured replacement on those paths: a code, a human
 * message, and an optional machine-usable context string (a line
 * number for the text loaders, a wire id for circuit validation), so
 * callers can branch on *what* failed instead of parsing what() text.
 *
 * Status is a value type; StatusError adapts it to the exception
 * channel for APIs whose signatures cannot carry a Status (the
 * simulation entry points). checkers return Status directly.
 */

#ifndef ST_FAULT_STATUS_HPP
#define ST_FAULT_STATUS_HPP

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <utility>

namespace st {

/** Failure categories, loosely following the canonical RPC codes. */
enum class StatusCode : uint8_t
{
    Ok,                 //!< not an error
    InvalidArgument,    //!< malformed request or input text
    OutOfRange,         //!< index / id outside the valid domain
    FailedPrecondition, //!< structure violates a required invariant
    ResourceExhausted,  //!< a budget (events, slots) ran out
    DataLoss,           //!< results are known to be incomplete
    Internal,           //!< engine bug: an invariant we own broke
    NotFound,           //!< a named artifact (file, section) is absent
    Unavailable,        //!< a dependency is temporarily unusable
};

/** Printable name of a status code ("ok", "invalid_argument", ...). */
const char *statusCodeName(StatusCode code);

/** A diagnostic outcome: Ok, or a code + message (+ context). */
class Status
{
  public:
    /** Default construction is success. */
    Status() = default;

    /** An error status; @p code must not be StatusCode::Ok. */
    Status(StatusCode code, std::string message,
           std::string context = "")
        : code_(code), message_(std::move(message)),
          context_(std::move(context))
    {
    }

    /** The success value. */
    static Status
    ok()
    {
        return Status();
    }

    /** True iff this is the success value. */
    bool isOk() const { return code_ == StatusCode::Ok; }
    explicit operator bool() const { return isOk(); }

    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Optional machine-usable locus ("line 12", "wire 7", ...). */
    const std::string &context() const { return context_; }

    /** Render as "failed_precondition: msg [wire 7]" ("ok" when ok). */
    std::string str() const;

    /** Alias of str() for call sites that expect the common name. */
    std::string toString() const { return str(); }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
    std::string context_;
};

/** Stream the rendered status ("ok" or "code: msg [context]"). */
std::ostream &operator<<(std::ostream &os, const Status &status);

/**
 * Exception carrier for a non-ok Status, for entry points that return
 * results by value. what() is the rendered status string.
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.str()), status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }

  private:
    Status status_;
};

} // namespace st

/**
 * Early-return propagation for Status-returning functions:
 *
 *     ST_RETURN_IF_ERROR(parseHeader(reader));
 *
 * Evaluates @p expr once; a non-ok Status is returned from the
 * enclosing function unchanged, so call chains carry the innermost
 * code + context (e.g. "line 12") to the boundary without hand-built
 * string plumbing.
 */
#define ST_RETURN_IF_ERROR(expr)                                        \
    do {                                                                \
        ::st::Status st_status_ = (expr);                               \
        if (!st_status_.isOk())                                         \
            return st_status_;                                          \
    } while (0)

#endif // ST_FAULT_STATUS_HPP
