#include "fault/status.hpp"

#include <ostream>

namespace st {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:
        return "ok";
      case StatusCode::InvalidArgument:
        return "invalid_argument";
      case StatusCode::OutOfRange:
        return "out_of_range";
      case StatusCode::FailedPrecondition:
        return "failed_precondition";
      case StatusCode::ResourceExhausted:
        return "resource_exhausted";
      case StatusCode::DataLoss:
        return "data_loss";
      case StatusCode::Internal:
        return "internal";
      case StatusCode::NotFound:
        return "not_found";
      case StatusCode::Unavailable:
        return "unavailable";
    }
    return "?";
}

std::string
Status::str() const
{
    if (isOk())
        return "ok";
    std::string out = statusCodeName(code_);
    out += ": ";
    out += message_;
    if (!context_.empty()) {
        out += " [";
        out += context_;
        out += ']';
    }
    return out;
}

std::ostream &
operator<<(std::ostream &os, const Status &status)
{
    return os << status.str();
}

} // namespace st
