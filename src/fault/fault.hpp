/**
 * @file
 * Deterministic fault injection and runtime invariant guards.
 *
 * The paper's constructions assume spike times are a *physical* signal:
 * real substrates jitter, drop, and delay them, and a production
 * runtime must degrade gracefully under exactly those perturbations
 * (cf. STICK's timing-noise characterization and Lynch & Musco's
 * composition-boundary invariants). This subsystem provides both
 * halves:
 *
 *  - **Injection.** A FaultInjector realizes a FaultSpec (spike-time
 *    jitter, drop-to-inf, spurious spikes, stuck-at-inf lines,
 *    per-synapse delay perturbation, GRL delay-gate stage variation).
 *    Every decision is a pure hash of (seed, domain, ids) — a
 *    counter-based draw, never a sequential RNG stream — so the same
 *    seed + spec produces bit-identical faults regardless of thread
 *    count, call order, or how often a hook re-evaluates (the
 *    invariance guard re-runs layers and must see the same faults).
 *    Severities nest: the uniform draw a spike's fate is thresholded
 *    against does not depend on the probability, so the spikes dropped
 *    at p=0.1 are a subset of those dropped at p=0.3 — the reason
 *    bench_fault's degradation curves are monotone.
 *
 *  - **Guards.** A GuardScope turns on opt-in runtime checks of the
 *    paper's defining properties at the hooks: causality (no finite
 *    output earlier than the earliest input), +1-shift invariance
 *    (spot-checked on sampled volleys), bounded history (no output
 *    later than the latest input + window), and event-agenda time
 *    monotonicity. Violations are counted in the obs metrics registry
 *    (guard.violations.*) and collected in a FaultReport — they never
 *    abort the computation.
 *
 * Both scopes install into process-wide atomic slots read by the
 * engine hooks with one relaxed/acquire load: with no scope active the
 * hooks cost a null-check, which is the "guard-off overhead == 0"
 * contract bench_fault measures. Scopes are meant to be managed from
 * one thread at a time (typically around a batch call); the worker
 * threads inside that call only read.
 */

#ifndef ST_FAULT_FAULT_HPP
#define ST_FAULT_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "fault/status.hpp"

namespace st::obs {
class Counter;
} // namespace st::obs

namespace st::fault {

/**
 * A fault model. All-zero (the default) injects nothing; every field
 * scales one physical failure mode independently.
 */
struct FaultSpec
{
    /** Seed of every hash-based draw; same seed => same faults. */
    uint64_t seed = 0;

    /** Spike-time jitter half-width: finite times move by a uniform
     *  offset in [-jitter, +jitter], clamped at 0. */
    Time::rep jitter = 0;

    /** Probability a finite spike is dropped (replaced by inf). */
    double dropProb = 0.0;

    /** Probability a silent (inf) line gains a spurious spike. */
    double spuriousProb = 0.0;

    /** Spurious spikes land uniformly in [0, spuriousSpan]. */
    Time::rep spuriousSpan = 15;

    /** Probability a line/wire is stuck at inf for the whole run
     *  (decided per line id, not per volley — a broken wire). */
    double stuckProb = 0.0;

    /** Per-synapse delay perturbation: each (neuron, synapse) edge
     *  adds a fixed extra delay uniform in [0, synDelayJitter]. */
    Time::rep synDelayJitter = 0;

    /** GRL delay-gate stage variation: each Delay gate's stage count
     *  moves by a uniform offset in [-gateDelayJitter,
     *  +gateDelayJitter], clamped at 0. */
    Time::rep gateDelayJitter = 0;

    /** True iff any volley-boundary fault is configured. */
    bool
    anyVolleyFault() const
    {
        return jitter > 0 || dropProb > 0 || spuriousProb > 0 ||
               stuckProb > 0;
    }

    /** True iff any field injects anything at all. */
    bool
    any() const
    {
        return anyVolleyFault() || synDelayJitter > 0 ||
               gateDelayJitter > 0;
    }
};

/** Guard checks, combinable as a bitmask. */
enum GuardFlag : uint32_t
{
    kGuardCausality = 1u << 0,      //!< finite out >= earliest input
    kGuardInvariance = 1u << 1,     //!< +1-shift spot check (sampled)
    kGuardBoundedHistory = 1u << 2, //!< finite out <= latest in + W
    kGuardAgendaOrder = 1u << 3,    //!< event time never decreases
    kGuardAll = (1u << 4) - 1,
};

/** Guard configuration installed by a GuardScope. */
struct GuardOptions
{
    uint32_t flags = kGuardAll;

    /** Invariance re-runs a layer; only every Nth volley pays it. */
    uint64_t invarianceSampleEvery = 16;

    /**
     * Bounded-history window W: a finite output later than the latest
     * finite input + W is a violation. Must cover the response-function
     * support plus any injected synapse delay; the default is generous
     * for every configuration in this repo.
     */
    Time::rep historyWindow = 256;
};

/** One recorded guard violation. */
struct GuardViolation
{
    std::string guard;  //!< "causality", "invariance", ...
    std::string where;  //!< site, e.g. "tnn.layer1" or "grl.agenda"
    std::string detail; //!< human-readable specifics
};

/**
 * Thread-safe sink for guard violations. Counts every violation per
 * guard kind; keeps the first kMaxDetailed full records so a failing
 * campaign is diagnosable without unbounded memory.
 */
class FaultReport
{
  public:
    /** Detailed records retained (counts are always exact). */
    static constexpr size_t kMaxDetailed = 64;

    /** Record one violation (called by the engine hooks). */
    void add(const char *guard, std::string where, std::string detail);

    /** Total violations across all guards. */
    uint64_t totalViolations() const;

    /** Violations recorded for one guard kind. */
    uint64_t countOf(std::string_view guard) const;

    /** The retained detailed records (first kMaxDetailed). */
    std::vector<GuardViolation> violations() const;

    /** True iff no violation was recorded. */
    bool clean() const { return totalViolations() == 0; }

    /** Multi-line human-readable summary. */
    std::string str() const;

  private:
    mutable std::mutex mutex_;
    std::vector<std::pair<std::string, uint64_t>> counts_;
    std::vector<GuardViolation> detailed_;
};

/**
 * Realization of a FaultSpec. Stateless beyond the spec: every draw is
 * a pure function of (spec.seed, domain, ids), so const methods are
 * safe from any number of threads and repeated calls with the same ids
 * return the same answer.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultSpec &spec);

    const FaultSpec &spec() const { return spec_; }

    /**
     * Apply the volley-boundary fault model to @p v in place: per line
     * — stuck-at-inf (keyed by line only), drop, jitter on finite
     * times, spurious spikes on silent lines. @p stream distinguishes
     * volleys (batch index); draws are keyed by (stream, line).
     */
    void perturbVolley(std::vector<Time> &v, uint64_t stream) const;

    /** perturbVolley() on one spike time (stuck/drop/jitter only). */
    Time perturbSpike(Time t, uint64_t stream, uint64_t line) const;

    /**
     * The fixed extra delay of synapse (@p neuron, @p synapse) in the
     * column identified by @p column_key (use the column's RNG seed so
     * stacked layers draw independent perturbations): uniform in
     * [0, synDelayJitter], constant for the injector's lifetime.
     */
    Time::rep synapseDelay(uint64_t column_key, uint64_t neuron,
                           uint64_t synapse) const;

    /**
     * The perturbed stage count of the GRL Delay gate driving @p wire:
     * stages + uniform in [-gateDelayJitter, +gateDelayJitter],
     * clamped at 0. Counts a fault only when the result differs.
     */
    Time::rep perturbGateDelay(Time::rep stages, uint64_t wire) const;

    /** True iff @p line is stuck at inf for this injector's lifetime
     *  (keyed by line id only — a broken wire, not a transient). */
    bool stuckAtInf(uint64_t line) const;

  private:
    /** Draw domains (salts) so independent decisions decorrelate. */
    enum class Domain : uint64_t
    {
        Drop = 1,
        Jitter,
        SpuriousGate,
        SpuriousTime,
        Stuck,
        SynDelay,
        GateDelay,
    };

    uint64_t draw(Domain d, uint64_t a, uint64_t b) const;
    double drawUnit(Domain d, uint64_t a, uint64_t b) const;

    FaultSpec spec_;

    // Injection tallies, resolved once at construction (registration
    // takes the registry mutex; recording is one relaxed add).
    obs::Counter *injJitter_;
    obs::Counter *injDrop_;
    obs::Counter *injSpurious_;
    obs::Counter *injStuck_;
    obs::Counter *injSynDelay_;
    obs::Counter *injGateDelay_;
};

/**
 * RAII installation of a FaultInjector as the process-wide active
 * injector read by the engine hooks. Nesting restores the previous
 * injector on destruction. Install/uninstall from one thread only
 * (hooks on worker threads read concurrently).
 */
class InjectionScope
{
  public:
    explicit InjectionScope(const FaultInjector &injector);
    ~InjectionScope();

    InjectionScope(const InjectionScope &) = delete;
    InjectionScope &operator=(const InjectionScope &) = delete;

  private:
    const FaultInjector *prev_;
};

/**
 * RAII activation of the runtime guards. Violations are counted in
 * guard.violations.* and, when @p report is non-null, recorded there.
 */
class GuardScope
{
  public:
    explicit GuardScope(const GuardOptions &options,
                        FaultReport *report = nullptr);
    ~GuardScope();

    GuardScope(const GuardScope &) = delete;
    GuardScope &operator=(const GuardScope &) = delete;

    /** Opaque scope state (defined in fault.cpp). */
    struct State;

  private:
    const State *prev_;
    State *own_;
};

/** The active injector, or nullptr (one acquire load — the hot path). */
const FaultInjector *activeInjector();

/** Bitmask of active guard flags (0 when no GuardScope is live). */
uint32_t activeGuardFlags();

/** True iff @p flag is enabled by the active GuardScope. */
inline bool
guardActive(GuardFlag flag)
{
    return (activeGuardFlags() & flag) != 0;
}

/** The active scope's options (defaults when no scope is live). */
GuardOptions activeGuardOptions();

/**
 * Record one guard violation: bumps guard.violations.<guard> in the
 * metrics registry and appends to the active scope's FaultReport (if
 * any). Never throws, never aborts — graceful degradation means the
 * computation continues and the caller reads the report.
 */
void reportViolation(const char *guard, std::string where,
                     std::string detail);

} // namespace st::fault

#endif // ST_FAULT_FAULT_HPP
