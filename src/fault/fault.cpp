#include "fault/fault.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace st::fault {

namespace {

/**
 * splitmix64 finalizer: the avalanche stage every draw funnels
 * through. Counter-based (no stream state), so draws are a pure
 * function of their key — the property the determinism contract and
 * the guard re-runs rely on.
 */
constexpr uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** The process-wide active injector (null = injection off). */
std::atomic<const FaultInjector *> g_injector{nullptr};

/** Guard flag mask mirror, for the one-load hot-path check. */
std::atomic<uint32_t> g_guard_flags{0};

} // namespace

// ---------------------------------------------------------------------
// FaultReport

void
FaultReport::add(const char *guard, std::string where,
                 std::string detail)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = std::find_if(counts_.begin(), counts_.end(),
                           [&](const auto &c) {
                               return c.first == guard;
                           });
    if (it == counts_.end())
        counts_.emplace_back(guard, 1);
    else
        ++it->second;
    if (detailed_.size() < kMaxDetailed)
        detailed_.push_back(
            {guard, std::move(where), std::move(detail)});
}

uint64_t
FaultReport::totalViolations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t n = 0;
    for (const auto &c : counts_)
        n += c.second;
    return n;
}

uint64_t
FaultReport::countOf(std::string_view guard) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &c : counts_) {
        if (c.first == guard)
            return c.second;
    }
    return 0;
}

std::vector<GuardViolation>
FaultReport::violations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return detailed_;
}

std::string
FaultReport::str() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (counts_.empty())
        return "fault report: clean (0 violations)";
    std::string out = "fault report:";
    for (const auto &c : counts_) {
        out += ' ' + c.first + '=' + std::to_string(c.second);
    }
    size_t shown = std::min<size_t>(detailed_.size(), 8);
    for (size_t i = 0; i < shown; ++i) {
        out += "\n  [" + detailed_[i].guard + "] " +
               detailed_[i].where + ": " + detailed_[i].detail;
    }
    if (detailed_.size() > shown)
        out += "\n  ... (" +
               std::to_string(detailed_.size() - shown) +
               " more recorded)";
    return out;
}

// ---------------------------------------------------------------------
// FaultInjector

FaultInjector::FaultInjector(const FaultSpec &spec) : spec_(spec)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    injJitter_ = &reg.counter("fault.injected.jitter");
    injDrop_ = &reg.counter("fault.injected.drop");
    injSpurious_ = &reg.counter("fault.injected.spurious");
    injStuck_ = &reg.counter("fault.injected.stuck");
    injSynDelay_ = &reg.counter("fault.injected.syn_delay");
    injGateDelay_ = &reg.counter("fault.injected.gate_delay");
}

uint64_t
FaultInjector::draw(Domain d, uint64_t a, uint64_t b) const
{
    // Three avalanche rounds, keyed stages mixed in between: changing
    // any of (seed, domain, a, b) decorrelates the draw completely.
    uint64_t h = mix64(spec_.seed ^
                       (static_cast<uint64_t>(d) * 0xd6e8feb86659fd93ULL));
    h = mix64(h ^ a);
    return mix64(h ^ b);
}

double
FaultInjector::drawUnit(Domain d, uint64_t a, uint64_t b) const
{
    return static_cast<double>(draw(d, a, b) >> 11) * 0x1.0p-53;
}

bool
FaultInjector::stuckAtInf(uint64_t line) const
{
    return spec_.stuckProb > 0 &&
           drawUnit(Domain::Stuck, line, 0) < spec_.stuckProb;
}

Time
FaultInjector::perturbSpike(Time t, uint64_t stream,
                            uint64_t line) const
{
    if (spec_.stuckProb > 0 && stuckAtInf(line)) {
        if (t.isFinite())
            injStuck_->add(1);
        return INF;
    }
    if (!t.isFinite())
        return t;
    if (spec_.dropProb > 0 &&
        drawUnit(Domain::Drop, stream, line) < spec_.dropProb) {
        injDrop_->add(1);
        return INF;
    }
    if (spec_.jitter > 0) {
        // delta = round(u * 2j) - j with u fixed per (stream, line):
        // growing j scales the same underlying draw, so fault sets
        // nest across severities (monotone degradation curves).
        const double u = drawUnit(Domain::Jitter, stream, line);
        const auto span = static_cast<double>(2 * spec_.jitter + 1);
        const int64_t delta =
            static_cast<int64_t>(u * span) -
            static_cast<int64_t>(spec_.jitter);
        if (delta != 0) {
            injJitter_->add(1);
            if (delta > 0)
                return t + static_cast<Time::rep>(delta);
            const auto back = static_cast<Time::rep>(-delta);
            return Time(back > t.value() ? 0 : t.value() - back);
        }
    }
    return t;
}

void
FaultInjector::perturbVolley(std::vector<Time> &v,
                             uint64_t stream) const
{
    if (!spec_.anyVolleyFault())
        return;
    for (size_t i = 0; i < v.size(); ++i) {
        Time t = perturbSpike(v[i], stream, i);
        if (t.isInf() && v[i].isInf() && spec_.spuriousProb > 0 &&
            drawUnit(Domain::SpuriousGate, stream, i) <
                spec_.spuriousProb) {
            const double u = drawUnit(Domain::SpuriousTime, stream, i);
            t = Time(static_cast<Time::rep>(
                u * static_cast<double>(spec_.spuriousSpan + 1)));
            injSpurious_->add(1);
        }
        v[i] = t;
    }
}

Time::rep
FaultInjector::synapseDelay(uint64_t column_key, uint64_t neuron,
                            uint64_t synapse) const
{
    if (spec_.synDelayJitter == 0)
        return 0;
    const double u = drawUnit(Domain::SynDelay, mix64(column_key) ^ neuron,
                              synapse);
    const auto d = static_cast<Time::rep>(
        u * static_cast<double>(spec_.synDelayJitter + 1));
    if (d != 0)
        injSynDelay_->add(1);
    return d;
}

Time::rep
FaultInjector::perturbGateDelay(Time::rep stages, uint64_t wire) const
{
    if (spec_.gateDelayJitter == 0)
        return stages;
    const double u = drawUnit(Domain::GateDelay, wire, 0);
    const auto span = static_cast<double>(2 * spec_.gateDelayJitter + 1);
    const int64_t delta =
        static_cast<int64_t>(u * span) -
        static_cast<int64_t>(spec_.gateDelayJitter);
    if (delta == 0)
        return stages;
    injGateDelay_->add(1);
    if (delta > 0)
        return stages + static_cast<Time::rep>(delta);
    const auto back = static_cast<Time::rep>(-delta);
    return back > stages ? 0 : stages - back;
}

// ---------------------------------------------------------------------
// Scopes and the hook-facing accessors

InjectionScope::InjectionScope(const FaultInjector &injector)
    : prev_(g_injector.exchange(&injector, std::memory_order_acq_rel))
{
}

InjectionScope::~InjectionScope()
{
    g_injector.store(prev_, std::memory_order_release);
}

const FaultInjector *
activeInjector()
{
    return g_injector.load(std::memory_order_acquire);
}

struct GuardScope::State
{
    GuardOptions options;
    FaultReport *report = nullptr;
};

namespace {

/** The active guard scope's state (null = guards off). */
std::atomic<const GuardScope::State *> g_guard{nullptr};

} // namespace

GuardScope::GuardScope(const GuardOptions &options, FaultReport *report)
    : own_(new State{options, report})
{
    prev_ = g_guard.exchange(own_, std::memory_order_acq_rel);
    g_guard_flags.store(options.flags, std::memory_order_release);
}

GuardScope::~GuardScope()
{
    g_guard.store(prev_, std::memory_order_release);
    g_guard_flags.store(prev_ ? prev_->options.flags : 0,
                        std::memory_order_release);
    delete own_;
}

uint32_t
activeGuardFlags()
{
    return g_guard_flags.load(std::memory_order_acquire);
}

GuardOptions
activeGuardOptions()
{
    const GuardScope::State *state =
        g_guard.load(std::memory_order_acquire);
    return state ? state->options : GuardOptions{};
}

void
reportViolation(const char *guard, std::string where,
                std::string detail)
{
    // Violations are rare by construction; the per-call name build is
    // irrelevant next to the check that found them.
    obs::MetricsRegistry::instance()
        .counter(std::string("guard.violations.") + guard)
        .add(1);
    const GuardScope::State *state =
        g_guard.load(std::memory_order_acquire);
    if (state != nullptr && state->report != nullptr)
        state->report->add(guard, std::move(where), std::move(detail));
}

} // namespace st::fault
