#include "tnn/stdp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace st {

SimplifiedStdp::SimplifiedStdp(double a_plus, double a_minus)
    : aPlus_(a_plus), aMinus_(a_minus)
{
    if (a_plus < 0 || a_minus < 0)
        throw std::invalid_argument("SimplifiedStdp: rates must be >= 0");
}

void
SimplifiedStdp::update(std::span<double> weights,
                       std::span<const Time> inputs, Time out) const
{
    if (weights.size() != inputs.size())
        throw std::invalid_argument("SimplifiedStdp: arity mismatch");
    for (size_t i = 0; i < weights.size(); ++i) {
        double &w = weights[i];
        double soft = w * (1.0 - w);
        // Inputs at or before the output spike contributed; later or
        // absent inputs did not (Guyonneau: neurons tune to the
        // earliest spikes).
        if (inputs[i].isFinite() && inputs[i] <= out)
            w += aPlus_ * soft;
        else
            w -= aMinus_ * soft;
        w = std::clamp(w, 0.0, 1.0);
    }
}

ClassicStdp::ClassicStdp(double a_plus, double a_minus, double tau_plus,
                         double tau_minus)
    : aPlus_(a_plus), aMinus_(a_minus), tauPlus_(tau_plus),
      tauMinus_(tau_minus)
{
    if (tau_plus <= 0 || tau_minus <= 0)
        throw std::invalid_argument("ClassicStdp: taus must be > 0");
}

void
ClassicStdp::update(std::span<double> weights,
                    std::span<const Time> inputs, Time out) const
{
    if (weights.size() != inputs.size())
        throw std::invalid_argument("ClassicStdp: arity mismatch");
    if (out.isInf())
        return;
    for (size_t i = 0; i < weights.size(); ++i) {
        double &w = weights[i];
        if (inputs[i].isInf()) {
            // No presynaptic spike: mild depression toward pruning.
            w -= aMinus_ * 0.5;
        } else if (inputs[i] <= out) {
            double dt = static_cast<double>(out.value() -
                                            inputs[i].value());
            w += aPlus_ * std::exp(-dt / tauPlus_);
        } else {
            double dt = static_cast<double>(inputs[i].value() -
                                            out.value());
            w -= aMinus_ * std::exp(-dt / tauMinus_);
        }
        w = std::clamp(w, 0.0, 1.0);
    }
}

std::vector<TrainEvent>
mergeTrainEvents(std::span<const std::optional<TrainEvent>> slots)
{
    std::vector<TrainEvent> merged;
    merged.reserve(slots.size());
    for (const std::optional<TrainEvent> &slot : slots) {
        if (slot)
            merged.push_back(*slot);
    }
    return merged;
}

size_t
quantizeWeight(double w, size_t max_weight)
{
    double clamped = std::clamp(w, 0.0, 1.0);
    return static_cast<size_t>(
        std::llround(clamped * static_cast<double>(max_weight)));
}

std::vector<size_t>
quantizeWeights(std::span<const double> w, size_t max_weight)
{
    std::vector<size_t> out;
    out.reserve(w.size());
    for (double x : w)
        out.push_back(quantizeWeight(x, max_weight));
    return out;
}

} // namespace st
