#include "tnn/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace st {

PatternDataset::PatternDataset(const PatternSetParams &params)
    : params_(params), rng_(params.seed)
{
    if (params_.numClasses == 0 || params_.numLines == 0)
        throw std::invalid_argument("PatternDataset: empty configuration");

    prototypes_.reserve(params_.numClasses);
    for (size_t c = 0; c < params_.numClasses; ++c) {
        Volley proto(params_.numLines, INF);
        bool any = false;
        for (Time &t : proto) {
            if (!rng_.chance(params_.silentProb)) {
                t = Time(rng_.below(params_.timeSpan + 1));
                any = true;
            }
        }
        if (!any) // guarantee a non-empty prototype
            proto[rng_.below(params_.numLines)] = 0_t;
        prototypes_.push_back(normalize(proto).values);
    }
}

LabeledVolley
PatternDataset::sample(size_t label)
{
    if (label >= prototypes_.size())
        throw std::out_of_range("PatternDataset: bad label");
    const Volley &proto = prototypes_[label];
    Volley v(proto.size(), INF);
    for (size_t i = 0; i < proto.size(); ++i) {
        if (proto[i].isInf() || rng_.chance(params_.dropProb))
            continue;
        double jittered = static_cast<double>(proto[i].value()) +
                          rng_.gaussian(0.0, params_.jitter);
        auto t = static_cast<int64_t>(std::llround(jittered));
        v[i] = Time(static_cast<Time::rep>(std::max<int64_t>(t, 0)));
    }
    return {normalize(v).values, label};
}

std::vector<LabeledVolley>
PatternDataset::sampleMany(size_t count)
{
    std::vector<LabeledVolley> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(sample(rng_.below(params_.numClasses)));
    return out;
}

ShiftedPatternDataset::ShiftedPatternDataset(
    const ShiftedPatternParams &params)
    : params_(params), rng_(params.seed)
{
    if (params_.numClasses == 0 || params_.motifWidth == 0 ||
        params_.motifWidth > params_.inputWidth) {
        throw std::invalid_argument("ShiftedPatternDataset: bad "
                                    "configuration");
    }
    motifs_.reserve(params_.numClasses);
    for (size_t c = 0; c < params_.numClasses; ++c) {
        Volley motif(params_.motifWidth, INF);
        bool any = false;
        for (Time &t : motif) {
            if (!rng_.chance(params_.silentProb)) {
                t = Time(rng_.below(params_.timeSpan + 1));
                any = true;
            }
        }
        if (!any)
            motif[rng_.below(params_.motifWidth)] = 0_t;
        motifs_.push_back(normalize(motif).values);
    }
}

size_t
ShiftedPatternDataset::maxOffset() const
{
    return params_.inputWidth - params_.motifWidth;
}

PlacedVolley
ShiftedPatternDataset::sample(size_t label, size_t offset)
{
    if (label >= motifs_.size())
        throw std::out_of_range("ShiftedPatternDataset: bad label");
    if (offset > maxOffset())
        throw std::out_of_range("ShiftedPatternDataset: bad offset");

    Volley v(params_.inputWidth, INF);
    const Volley &motif = motifs_[label];
    for (size_t i = 0; i < motif.size(); ++i) {
        if (motif[i].isInf() || rng_.chance(params_.dropProb))
            continue;
        double jittered = static_cast<double>(motif[i].value()) +
                          rng_.gaussian(0.0, params_.jitter);
        auto t = static_cast<int64_t>(std::llround(jittered));
        v[offset + i] =
            Time(static_cast<Time::rep>(std::max<int64_t>(t, 0)));
    }
    if (params_.noiseProb > 0) {
        for (size_t i = 0; i < v.size(); ++i) {
            bool in_motif = i >= offset && i < offset + motif.size();
            if (!in_motif && rng_.chance(params_.noiseProb))
                v[i] = Time(rng_.below(params_.timeSpan + 1));
        }
    }
    return {normalize(v).values, label, offset};
}

PlacedVolley
ShiftedPatternDataset::sample()
{
    return sample(rng_.below(params_.numClasses),
                  rng_.below(maxOffset() + 1));
}

std::vector<LabeledVolley>
ShiftedPatternDataset::sampleMany(size_t count)
{
    std::vector<LabeledVolley> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        PlacedVolley p = sample();
        out.push_back({std::move(p.volley), p.label});
    }
    return out;
}

FreewayGenerator::FreewayGenerator(const FreewayParams &params)
    : params_(params), rng_(params.seed)
{
    if (params_.lanes == 0 || params_.sensorsPerLane == 0)
        throw std::invalid_argument("FreewayGenerator: empty sensor array");
    if (params_.sensorSpacing.empty())
        throw std::invalid_argument("FreewayGenerator: need spacings");
}

uint32_t
FreewayGenerator::numAddresses() const
{
    return static_cast<uint32_t>(params_.lanes * params_.sensorsPerLane);
}

uint64_t
FreewayGenerator::windowSize() const
{
    return params_.interCarGap;
}

AerStream
FreewayGenerator::generateStream(size_t passes,
                                 std::vector<size_t> &labels_out)
{
    AerStream stream(numAddresses());
    labels_out.clear();
    labels_out.reserve(passes);

    const uint64_t gap = params_.interCarGap;
    for (size_t pass = 0; pass < passes; ++pass) {
        size_t lane = rng_.below(params_.lanes);
        labels_out.push_back(lane);
        uint64_t spacing =
            params_.sensorSpacing[lane % params_.sensorSpacing.size()];
        uint64_t start = pass * gap + 1;

        std::vector<AerEvent> burst;
        for (size_t s = 0; s < params_.sensorsPerLane; ++s) {
            if (rng_.chance(params_.missProb))
                continue; // sensor missed the car
            double nominal = static_cast<double>(start + s * spacing);
            double jittered = nominal + rng_.gaussian(0.0, params_.jitter);
            auto t = static_cast<int64_t>(std::llround(jittered));
            uint64_t lo = start;
            uint64_t hi = pass * gap + gap - 1;
            uint64_t clamped = static_cast<uint64_t>(std::clamp<int64_t>(
                t, static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
            burst.push_back(
                {clamped, static_cast<uint32_t>(
                              lane * params_.sensorsPerLane + s)});
        }
        std::sort(burst.begin(), burst.end(),
                  [](const AerEvent &a, const AerEvent &b) {
                      return a.time < b.time;
                  });
        for (const AerEvent &e : burst)
            stream.push(e.time, e.address);
    }
    return stream;
}

std::vector<LabeledVolley>
FreewayGenerator::generate(size_t passes)
{
    std::vector<size_t> labels;
    AerStream stream = generateStream(passes, labels);
    std::vector<Volley> windows = stream.sliceWindows(windowSize());

    std::vector<LabeledVolley> out;
    size_t count = std::min(windows.size(), labels.size());
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back({normalize(windows[i]).values, labels[i]});
    return out;
}

} // namespace st
