/**
 * @file
 * Excitatory TNN columns with WTA lateral inhibition (paper Sec. II.C,
 * IV.C; Fig. 4's building block).
 *
 * A Column is a bank of SRM0 excitatory neurons sharing one input volley,
 * followed by bulk winner-take-all inhibition. Synaptic weights are
 * low-resolution (0..maxWeight discrete levels, per the paper's 3-4 bit
 * argument); training keeps continuous shadow weights in [0, 1] updated
 * by a local STDP rule, while evaluation always uses the quantized
 * weights — exactly what a micro-weight (Fig. 14) hardware column would
 * compute. Training is unsupervised WTA-learning: only the earliest-
 * firing neuron updates, so neurons tune to distinct recurring patterns
 * (Guyonneau [21], Masquelier [37]).
 */

#ifndef ST_TNN_LAYER_HPP
#define ST_TNN_LAYER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "neuron/response.hpp"
#include "neuron/srm0_reference.hpp"
#include "tnn/stdp.hpp"
#include "tnn/volley.hpp"
#include "util/rng.hpp"

namespace st {

/** Response-function shape used by a column's synapses. */
enum class ResponseShape : uint8_t
{
    Step,            //!< non-leaky integrate-and-fire (most TNN papers)
    Biexponential,   //!< Fig. 2a leaky response
    PiecewiseLinear, //!< Fig. 2b Maass approximation
};

/** Static configuration of a column. */
struct ColumnParams
{
    size_t numInputs = 0;
    size_t numNeurons = 0;
    /** Firing threshold theta, in amplitude units. */
    ResponseFunction::Amp threshold = 1;
    /** Discrete weight levels (7 => 3-bit weights). */
    size_t maxWeight = 7;
    ResponseShape shape = ResponseShape::Step;
    double tauSlow = 4.0; //!< biexponential slow decay
    double tauFast = 1.0; //!< biexponential fast decay
    Time::rep rise = 2;   //!< piecewise-linear rise
    Time::rep fall = 6;   //!< piecewise-linear fall
    /** tau-WTA window applied by process(); 0 disables. */
    Time::rep wtaTau = 1;
    /** k-WTA cap applied after the window; 0 disables. */
    size_t wtaK = 1;
    /** Mean of the random initial weights. */
    double initWeight = 0.5;
    /** Uniform half-width of initial-weight jitter. */
    double initJitter = 0.2;
    /**
     * Training-time fatigue (the classic "conscience" mechanism): a
     * neuron that has already won this many times more than the
     * least-winning neuron sits out of the training competition, so
     * every neuron eventually specializes on some pattern. 0 disables.
     * Inference (process()) is never affected.
     */
    size_t fatigue = 0;
    uint64_t seed = 0x5eed;
};

/** One training-step outcome. */
struct TrainResult
{
    std::optional<size_t> winner; //!< earliest-firing neuron, if any
    Time spikeTime = INF;         //!< the winner's spike time
};

/**
 * A column of SRM0 neurons with shared input and lateral inhibition.
 *
 * Thread safety: the const evaluation path (rawFireTimes, process,
 * neuronModel) may be called from any number of threads concurrently —
 * the lazy model cache publishes entries atomically. Mutation
 * (trainStep, trainBatch, setWeights, resetFatigue, assignment) is
 * single-writer: it must not overlap any other call on the same
 * Column. The batch engine respects this by separating the parallel
 * read phase from the serial merge phase.
 */
class Column
{
  public:
    explicit Column(const ColumnParams &params);

    /**
     * Construct with the weight matrix supplied directly: one row per
     * neuron, each row numInputs wide (arity-checked). This is the
     * deserialization fast path — it skips the seeded random init
     * that the supplied weights would immediately overwrite. Value
     * ranges are the caller's contract (the STMF decoder range-checks
     * every weight before constructing).
     */
    Column(const ColumnParams &params,
           std::vector<std::vector<double>> weights);

    /** Copies share nothing; the lazy model cache starts empty. */
    Column(const Column &other);
    Column &operator=(const Column &other);
    Column(Column &&) = default;
    Column &operator=(Column &&) = default;

    /** Column configuration. */
    const ColumnParams &params() const { return params_; }

    /**
     * Fire every neuron on the volley (no inhibition): the raw spike
     * times a downstream WTA sees.
     */
    std::vector<Time> rawFireTimes(std::span<const Time> inputs) const;

    /** rawFireTimes() into a caller-owned buffer (capacity reused). */
    void rawFireTimesInto(std::span<const Time> inputs,
                          std::vector<Time> &out) const;

    /**
     * Full forward step: fire all neurons, then apply tau-WTA and k-WTA
     * inhibition per the column parameters.
     */
    Volley process(std::span<const Time> inputs) const;

    /**
     * process() into a caller-owned buffer: identical results, but the
     * buffer's capacity is reused across calls — the batch engine's
     * steady state allocates nothing per volley. @p out must not alias
     * @p inputs.
     */
    void processInto(std::span<const Time> inputs, Volley &out) const;

    /**
     * One unsupervised WTA-learning step: the earliest-firing neuron
     * (ties to the lowest index) updates its weights with @p rule.
     * With params().fatigue > 0, neurons far ahead in win count are
     * excluded from this step's competition (see ColumnParams).
     */
    TrainResult trainStep(std::span<const Time> inputs,
                          const StdpRule &rule);

    /**
     * One mini-batch of unsupervised WTA-learning: every volley's
     * winner is selected against the batch-start weights and fatigue
     * counters (in parallel across @p nthreads lanes, 0 = default),
     * then the weight updates and win counts are merged serially in
     * sample order. The merge order is a pure function of the batch,
     * so the resulting weights are bit-identical for every thread
     * count. Note the semantics differ from a trainStep() loop:
     * within one batch, later samples do not see earlier samples'
     * updates (classic mini-batch STDP).
     *
     * @return Number of volleys in which some neuron fired.
     */
    size_t trainBatch(std::span<const Volley> inputs,
                      const StdpRule &rule, size_t nthreads = 0);

    /**
     * The scan/merge halves of trainBatch(), exposed so the pipelined
     * batch engine (TnnNetwork::trainLayerBatched) can fuse the winner
     * scan into its per-block dataflow stages instead of paying a
     * second full-batch pass behind a barrier.
     *
     * Contract: call leastWins() once at the mini-batch boundary, run
     * any number of concurrent scanWinner() calls against the frozen
     * weights (const, thread-safe — same guarantee as process()), and
     * apply the collected slots with one serial applyTrainEvents().
     * No mutation may overlap the scans.
     */
    size_t leastWins() const;

    /** One sample's winner against the current (frozen) weights. The
     *  returned event's sample field is 0; the caller assigns it. */
    std::optional<TrainEvent>
    scanWinner(std::span<const Time> inputs, size_t least_wins) const;

    /**
     * Serially merge per-sample winner slots in sample order and apply
     * the weight updates (mini-batch semantics; see trainBatch()).
     * slots[i] must have sample == i set, and @p inputs[i] must be the
     * volley slot i was scanned on.
     *
     * @return Number of slots in which some neuron fired.
     */
    size_t applyTrainEvents(
        std::span<const std::optional<TrainEvent>> slots,
        std::span<const Volley> inputs, const StdpRule &rule);

    /** Times neuron @p neuron has won a training step. */
    size_t winCount(size_t neuron) const;

    /** Clear all fatigue win counters. */
    void resetFatigue();

    /** Continuous shadow weights of one neuron (training state). */
    const std::vector<double> &weights(size_t neuron) const;

    /** Overwrite one neuron's shadow weights (e.g., to seed a test). */
    void setWeights(size_t neuron, std::vector<double> w);

    /** Quantized (hardware) weights of one neuron. */
    std::vector<size_t> discreteWeights(size_t neuron) const;

    /**
     * The reference SRM0 model a neuron currently implements (quantized
     * weights applied to the response family).
     */
    Srm0Neuron neuronModel(size_t neuron) const;

    /** The weight-indexed response family used by every synapse. */
    const std::vector<ResponseFunction> &family() const { return family_; }

  private:
    /**
     * One lazily built model, published with an atomic
     * compare-exchange so concurrent const readers may build it
     * without locking (losers discard their build). Mutation of the
     * owning Column — which invalidates slots — is single-writer and
     * must not overlap readers (see the class comment).
     */
    struct ModelSlot
    {
        std::atomic<Srm0Neuron *> ptr{nullptr};

        ModelSlot() = default;
        ModelSlot(ModelSlot &&other) noexcept
            : ptr(other.ptr.exchange(nullptr,
                                     std::memory_order_relaxed))
        {
        }
        ModelSlot &
        operator=(ModelSlot &&other) noexcept
        {
            if (this != &other) {
                delete ptr.exchange(
                    other.ptr.exchange(nullptr,
                                       std::memory_order_relaxed),
                    std::memory_order_relaxed);
            }
            return *this;
        }
        ~ModelSlot()
        {
            delete ptr.load(std::memory_order_relaxed);
        }
    };

    /** Cached reference model for one neuron (weights rarely change
     *  between evaluations, so rebuilding per fire() call is wasted
     *  work in training loops). Safe under concurrent const readers. */
    const Srm0Neuron &cachedModel(size_t neuron) const;

    /** Drop a neuron's cached model after its weights changed. */
    void invalidateModel(size_t neuron);

    /**
     * The trainStep()/trainBatch() competition: earliest spike wins,
     * simultaneous spikes go to the highest potential, with neurons
     * more than params().fatigue wins ahead of @p least_wins excluded.
     * Pure (no mutation); the returned event's sample field is 0.
     */
    std::optional<TrainEvent>
    selectWinner(std::span<const Time> inputs, size_t least_wins) const;

    ColumnParams params_;
    std::vector<ResponseFunction> family_; //!< indexed by discrete weight
    std::vector<std::vector<double>> weights_; //!< [neuron][input]
    std::vector<size_t> winCount_;             //!< fatigue bookkeeping
    /** Lazily built quantized models, invalidated on weight changes. */
    mutable std::vector<ModelSlot> modelCache_;
};

} // namespace st

#endif // ST_TNN_LAYER_HPP
