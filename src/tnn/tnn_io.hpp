/**
 * @file
 * Text serialization of trained TNN components.
 *
 * STDP training is the expensive part of a TNN workflow; these
 * round-trip formats let trained columns, networks and conv layers be
 * saved, diffed and reloaded (e.g., train once, then program hardware
 * micro-weights in a separate run). Weights are stored with full
 * double precision so save/load is bit-exact; fatigue win counters are
 * transient training state and reset on load.
 *
 * Formats are line-oriented with '#' comments, mirroring the stnet
 * format of core/network_io.hpp:
 *
 *     stcolumn 1
 *     inputs 4 neurons 2 threshold 6 maxweight 7 shape step
 *     wta 1 1 fatigue 8 init 0.5 0.2 seed 1234
 *     weights 0  0.5 0.25 ...
 *     weights 1  ...
 */

#ifndef ST_TNN_TNN_IO_HPP
#define ST_TNN_TNN_IO_HPP

#include <string>

#include "tnn/conv.hpp"
#include "tnn/layer.hpp"
#include "tnn/tnn_network.hpp"

namespace st {

/** Serialize a column (parameters + trained weights). */
std::string columnToText(const Column &column);

/** Parse a column; @throws std::invalid_argument on malformed input. */
Column columnFromText(const std::string &text);

/** Serialize a whole multi-layer network. */
std::string tnnToText(const TnnNetwork &net);

/** Parse a multi-layer network. */
TnnNetwork tnnFromText(const std::string &text);

/** Serialize a convolutional layer (parameters + shared weights). */
std::string convToText(const Conv1dLayer &conv);

/** Parse a convolutional layer. */
Conv1dLayer convFromText(const std::string &text);

} // namespace st

#endif // ST_TNN_TNN_IO_HPP
