#include "tnn/tempotron.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace st {

Tempotron::Tempotron(const TempotronParams &params)
    : params_(params)
{
    if (params_.numInputs == 0)
        throw std::invalid_argument("Tempotron: needs inputs");
    if (params_.tauFast >= params_.tauSlow)
        throw std::invalid_argument("Tempotron: tauFast must be < "
                                    "tauSlow");
    // Normalize the kernel so its peak value is 1.
    double ts = params_.tauSlow, tf = params_.tauFast;
    double t_star = std::log(ts / tf) * ts * tf / (ts - tf);
    kernelNorm_ =
        1.0 / (std::exp(-t_star / ts) - std::exp(-t_star / tf));

    Rng rng(params_.seed);
    weights_.resize(params_.numInputs);
    for (double &w : weights_) {
        w = params_.initWeight +
            params_.initJitter * (2.0 * rng.uniform() - 1.0);
    }
}

double
Tempotron::kernel(double dt) const
{
    if (dt < 0)
        return 0.0;
    return kernelNorm_ * (std::exp(-dt / params_.tauSlow) -
                          std::exp(-dt / params_.tauFast));
}

double
Tempotron::potentialAt(std::span<const Time> volley, double t) const
{
    if (volley.size() != weights_.size())
        throw std::invalid_argument("Tempotron: arity mismatch");
    double v = 0.0;
    for (size_t i = 0; i < volley.size(); ++i) {
        if (volley[i].isFinite()) {
            v += weights_[i] *
                 kernel(t - static_cast<double>(volley[i].value()));
        }
    }
    return v;
}

double
Tempotron::horizon(std::span<const Time> volley) const
{
    double last = 0.0;
    for (Time t : volley) {
        if (t.isFinite())
            last = std::max(last, static_cast<double>(t.value()));
    }
    // ~5 slow time constants past the last spike covers the kernel.
    return last + 5.0 * params_.tauSlow;
}

bool
Tempotron::fires(std::span<const Time> volley) const
{
    const double end = horizon(volley);
    for (double t = 0.0; t <= end; t += 0.5) {
        if (potentialAt(volley, t) >= params_.threshold)
            return true;
    }
    return false;
}

double
Tempotron::peakTime(std::span<const Time> volley) const
{
    const double end = horizon(volley);
    double best_t = 0.0, best_v = -1e300;
    for (double t = 0.0; t <= end; t += 0.5) {
        double v = potentialAt(volley, t);
        if (v > best_v) {
            best_v = v;
            best_t = t;
        }
    }
    return best_t;
}

bool
Tempotron::train(const TempotronSample &sample)
{
    bool fired = fires(sample.volley);
    if (fired == sample.positive)
        return false; // correct, no update
    double t_peak = peakTime(sample.volley);
    double direction = sample.positive ? 1.0 : -1.0;
    for (size_t i = 0; i < weights_.size(); ++i) {
        Time x = sample.volley[i];
        if (x.isFinite()) {
            weights_[i] +=
                direction * params_.learningRate *
                kernel(t_peak - static_cast<double>(x.value()));
        }
    }
    return true;
}

std::vector<size_t>
Tempotron::trainEpochs(std::span<const TempotronSample> data,
                       size_t epochs)
{
    std::vector<size_t> errors;
    errors.reserve(epochs);
    for (size_t e = 0; e < epochs; ++e) {
        size_t wrong = 0;
        for (const TempotronSample &s : data)
            wrong += train(s);
        errors.push_back(wrong);
    }
    return errors;
}

double
Tempotron::accuracy(std::span<const TempotronSample> data) const
{
    if (data.empty())
        return 0.0;
    size_t right = 0;
    for (const TempotronSample &s : data)
        right += fires(s.volley) == s.positive;
    return static_cast<double>(right) / static_cast<double>(data.size());
}

} // namespace st
