/**
 * @file
 * Evaluation metrics for unsupervised TNN experiments.
 *
 * STDP-trained columns are unsupervised, so quality is judged the way the
 * surveyed papers do: map each neuron to the class it responds to most
 * often (majority assignment) and measure purity/accuracy of that
 * mapping, plus coverage (how often any neuron fires at all).
 */

#ifndef ST_TNN_METRICS_HPP
#define ST_TNN_METRICS_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace st {

/**
 * Cluster-vs-label contingency table.
 *
 * Rows are clusters (e.g., winning neurons); columns are ground-truth
 * labels. A sample with no winner is recorded as "unassigned".
 */
class ConfusionMatrix
{
  public:
    ConfusionMatrix(size_t num_clusters, size_t num_labels);

    /** Record one sample's outcome. */
    void add(std::optional<size_t> cluster, size_t label);

    /** Count in one cell. */
    size_t at(size_t cluster, size_t label) const;

    /** Total samples recorded (including unassigned). */
    size_t total() const { return total_; }

    /** Samples that had no winning cluster. */
    size_t unassigned() const { return unassigned_; }

    /** Fraction of samples with a winner. */
    double coverage() const;

    /**
     * Clustering purity: sum over clusters of their majority-label count,
     * divided by total samples (unassigned count as misses).
     */
    double purity() const;

    /** Majority label of each cluster (nullopt for empty clusters). */
    std::vector<std::optional<size_t>> majorityAssignment() const;

    /**
     * Accuracy under the majority assignment: fraction of samples whose
     * cluster's majority label equals their own label.
     */
    double accuracy() const;

    /** Number of distinct labels that are some cluster's majority. */
    size_t distinctLabelsCovered() const;

    /** Render as an ASCII table. */
    std::string str() const;

  private:
    size_t numClusters_, numLabels_;
    std::vector<size_t> counts_; //!< row-major [cluster][label]
    size_t unassigned_ = 0;
    size_t total_ = 0;
};

} // namespace st

#endif // ST_TNN_METRICS_HPP
