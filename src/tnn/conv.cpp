#include "tnn/conv.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/algebra.hpp"

namespace st {

ColumnParams
Conv1dLayer::columnParamsFor(const Conv1dParams &p)
{
    ColumnParams cp;
    cp.numInputs = p.kernelSize;
    cp.numNeurons = p.numFeatures;
    cp.threshold = p.threshold;
    cp.maxWeight = p.maxWeight;
    cp.shape = p.shape;
    cp.wtaTau = 0; // inhibition is handled across positions, not here
    cp.wtaK = 0;
    cp.initWeight = p.initWeight;
    cp.initJitter = p.initJitter;
    cp.seed = p.seed;
    return cp;
}

Conv1dLayer::Conv1dLayer(const Conv1dParams &params)
    : params_(params), numPositions_(0),
      column_(columnParamsFor(params))
{
    if (params_.kernelSize == 0 || params_.kernelSize > params_.inputWidth)
        throw std::invalid_argument("Conv1dLayer: bad kernel size");
    if (params_.stride == 0)
        throw std::invalid_argument("Conv1dLayer: stride must be >= 1");
    numPositions_ =
        (params_.inputWidth - params_.kernelSize) / params_.stride + 1;
    winCount_.assign(params_.numFeatures, 0);
}

Volley
Conv1dLayer::window(std::span<const Time> input, size_t p) const
{
    if (input.size() != params_.inputWidth)
        throw std::invalid_argument("Conv1dLayer: arity mismatch");
    if (p >= numPositions_)
        throw std::out_of_range("Conv1dLayer: bad position");
    size_t base = p * params_.stride;
    return Volley(input.begin() + base,
                  input.begin() + base + params_.kernelSize);
}

Volley
Conv1dLayer::featureMap(std::span<const Time> input) const
{
    Volley map(params_.numFeatures * numPositions_, INF);
    for (size_t p = 0; p < numPositions_; ++p) {
        Volley w = window(input, p);
        std::vector<Time> fired = column_.rawFireTimes(w);
        for (size_t f = 0; f < params_.numFeatures; ++f)
            map[f * numPositions_ + p] = fired[f];
    }
    return map;
}

Volley
Conv1dLayer::pooled(std::span<const Time> input) const
{
    Volley map = featureMap(input);
    Volley out(params_.numFeatures, INF);
    for (size_t f = 0; f < params_.numFeatures; ++f) {
        for (size_t p = 0; p < numPositions_; ++p) {
            out[f] = tmin(out[f], map[f * numPositions_ + p]);
        }
    }
    return out;
}

ConvTrainResult
Conv1dLayer::trainStep(std::span<const Time> input, const StdpRule &rule)
{
    Volley map = featureMap(input);

    size_t least_wins =
        *std::min_element(winCount_.begin(), winCount_.end());

    // Winner: earliest spike; ties go to the (feature, position) with
    // the highest potential at the firing time. That favours the
    // window fully covering a motif over partial-overlap windows that
    // cross threshold at the same instant — without it, features tune
    // to misaligned fragments (Kheradpisheh et al.'s tie rule).
    ConvTrainResult result;
    ResponseFunction::Amp best_potential = 0;
    for (size_t f = 0; f < params_.numFeatures; ++f) {
        if (params_.fatigue > 0 &&
            winCount_[f] > least_wins + params_.fatigue) {
            continue;
        }
        Srm0Neuron model = column_.neuronModel(f);
        for (size_t p = 0; p < numPositions_; ++p) {
            Time t = map[f * numPositions_ + p];
            if (t.isInf() || t > result.spikeTime)
                continue;
            Volley local = window(input, p);
            ResponseFunction::Amp potential =
                model.potentialAt(local, t.value());
            if (t < result.spikeTime || potential > best_potential) {
                result.spikeTime = t;
                result.feature = f;
                result.position = p;
                best_potential = potential;
            }
        }
    }
    if (result.feature) {
        ++winCount_[*result.feature];
        std::vector<double> w = column_.weights(*result.feature);
        Volley local = window(input, result.position);
        rule.update(w, local, result.spikeTime);
        column_.setWeights(*result.feature, std::move(w));
    }
    return result;
}

const std::vector<double> &
Conv1dLayer::weights(size_t feature) const
{
    return column_.weights(feature);
}

void
Conv1dLayer::setWeights(size_t feature, std::vector<double> w)
{
    column_.setWeights(feature, std::move(w));
}

size_t
Conv1dLayer::winCount(size_t feature) const
{
    return winCount_.at(feature);
}

} // namespace st
