/**
 * @file
 * The tempotron (Guetig & Sompolinsky [18]) — the supervised TNN model
 * the paper surveys in Sec. II.C: "an SRM0 model with biexponential
 * response functions" whose training rule is supervised yet localized.
 *
 * A tempotron is a binary classifier over spike volleys: it should fire
 * (potential crosses theta) on positive-class volleys and stay quiet on
 * negative ones. Training nudges each synapse by the value of its
 * postsynaptic kernel at the time of the *peak* potential:
 *
 *     error on positive (no spike):  w_i += lr * K(t_peak - t_i)
 *     error on negative (spiked):    w_i -= lr * K(t_peak - t_i)
 *
 * Weights are real-valued during training (they may go negative —
 * effectively inhibitory synapses); quantizeWeights() maps them to the
 * low-resolution micro-weight range for hardware, as with STDP columns.
 */

#ifndef ST_TNN_TEMPOTRON_HPP
#define ST_TNN_TEMPOTRON_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "core/time.hpp"
#include "tnn/volley.hpp"
#include "util/rng.hpp"

namespace st {

/** Tempotron configuration. */
struct TempotronParams
{
    size_t numInputs = 0;
    double threshold = 1.0;   //!< firing threshold theta
    double tauSlow = 4.0;     //!< kernel membrane constant
    double tauFast = 1.0;     //!< kernel synaptic constant
    double learningRate = 0.05;
    double initWeight = 0.1;  //!< mean initial weight
    double initJitter = 0.05; //!< uniform init spread
    uint64_t seed = 0x7e39;
};

/** A labeled training/evaluation sample. */
struct TempotronSample
{
    Volley volley;
    bool positive = false;
};

/**
 * A single tempotron neuron.
 */
class Tempotron
{
  public:
    explicit Tempotron(const TempotronParams &params);

    /** The normalized biexponential kernel K(dt), K(peak) = 1. */
    double kernel(double dt) const;

    /** Membrane potential at time t for a volley. */
    double potentialAt(std::span<const Time> volley, double t) const;

    /**
     * Does the neuron fire on this volley? (Scans the discrete time
     * grid covered by the volley plus the kernel support.)
     */
    bool fires(std::span<const Time> volley) const;

    /** Time of the maximum potential (the training anchor). */
    double peakTime(std::span<const Time> volley) const;

    /**
     * One tempotron update. Returns true iff the neuron was in error
     * (and therefore adjusted its weights).
     */
    bool train(const TempotronSample &sample);

    /** Run several epochs over a dataset; returns errors per epoch. */
    std::vector<size_t> trainEpochs(std::span<const TempotronSample> data,
                                    size_t epochs);

    /** Classification accuracy over a dataset. */
    double accuracy(std::span<const TempotronSample> data) const;

    /** Current weights (may be negative). */
    const std::vector<double> &weights() const { return weights_; }

    /** Parameters. */
    const TempotronParams &params() const { return params_; }

  private:
    /** Latest time the potential can still change for this volley. */
    double horizon(std::span<const Time> volley) const;

    TempotronParams params_;
    std::vector<double> weights_;
    double kernelNorm_;
};

} // namespace st

#endif // ST_TNN_TEMPOTRON_HPP
