/**
 * @file
 * Liquid State Machines — the recurrent extension the paper defers.
 *
 * Sec. II.C: "Liquid State Machines [33][44] are based on the same
 * principles as TNNs: temporal encoding and spiking neuron models.
 * However, they contain feedback established via pseudo-random
 * interconnection patterns. Although they are not feedforward TNNs, the
 * theory in this paper may potentially be extended to include them."
 *
 * This module is that extension, clearly outside the feedforward
 * single-wave model: a discrete-time recurrent reservoir of leaky
 * integrate-and-fire neurons with random excitatory/inhibitory
 * connectivity. Input volleys are injected as spikes at their encoded
 * times; the reservoir's fading activity holds a temporal context, and
 * a simple trained linear readout classifies from the exponentially
 * filtered spike traces (Maass's separation/readout split).
 *
 * Everything stays deterministic (seeded) and laptop-scale, matching
 * the rest of the library.
 */

#ifndef ST_TNN_LSM_HPP
#define ST_TNN_LSM_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "tnn/volley.hpp"
#include "util/rng.hpp"

namespace st {

/** Reservoir configuration. */
struct ReservoirParams
{
    size_t numInputs = 0;    //!< input channels
    size_t numNeurons = 64;  //!< reservoir size
    double connectProb = 0.15;  //!< recurrent connection probability
    double inputProb = 0.3;     //!< input->neuron connection probability
    double excitatoryFraction = 0.7; //!< rest are inhibitory
    double weightScale = 0.35;  //!< recurrent weight magnitude (mean)
    double inputScale = 1.2;    //!< input weight magnitude (mean)
    double leak = 0.8;          //!< per-step membrane retention factor
    double threshold = 1.0;     //!< firing threshold
    uint32_t refractory = 1;    //!< steps silent after a spike
    double traceLeak = 0.7;     //!< readout trace retention factor
    uint64_t seed = 0x11c;
};

/**
 * A discrete-time recurrent spiking reservoir.
 */
class Reservoir
{
  public:
    explicit Reservoir(const ReservoirParams &params);

    const ReservoirParams &params() const { return params_; }

    /** Reset membrane state, refractory timers and traces. */
    void reset();

    /**
     * Advance one time step.
     *
     * @param input_channels  Channels spiking at this step.
     * @return Indices of reservoir neurons that fired.
     */
    std::vector<uint32_t>
    step(std::span<const uint32_t> input_channels);

    /**
     * Inject a volley (channel c spikes at its encoded time) and run
     * for @p total_steps steps (covering the volley and the requested
     * silent tail). Returns the number of reservoir spikes observed.
     */
    size_t runVolley(std::span<const Time> volley, size_t total_steps);

    /** Exponentially filtered per-neuron spike traces (the state). */
    const std::vector<double> &traces() const { return traces_; }

    /** Total spikes since the last reset. */
    size_t spikeCount() const { return spikeCount_; }

    /** Recurrent connection count (for inspection). */
    size_t numConnections() const { return edges_.size(); }

  private:
    struct Edge
    {
        uint32_t from, to;
        double weight;
    };

    ReservoirParams params_;
    std::vector<Edge> edges_;              //!< recurrent synapses
    std::vector<std::vector<uint32_t>> inputFan_; //!< targets / channel
    std::vector<std::vector<double>> inputW_; //!< weights, parallel
    std::vector<double> potential_;
    std::vector<uint32_t> refractory_;
    std::vector<uint8_t> firedLast_;
    std::vector<double> traces_;
    size_t spikeCount_ = 0;
};

/**
 * A one-vs-rest perceptron readout over reservoir traces — the
 * classic "simple readout on a complex liquid" arrangement.
 */
class LinearReadout
{
  public:
    /** @param num_features trace vector length; @param num_classes K. */
    LinearReadout(size_t num_features, size_t num_classes,
                  uint64_t seed = 0x11d);

    /** One perceptron update per class; returns true if any erred. */
    bool train(std::span<const double> features, size_t label,
               double lr = 0.05);

    /** Predicted class (argmax of the class scores). */
    size_t classify(std::span<const double> features) const;

  private:
    double score(std::span<const double> features, size_t c) const;

    size_t numFeatures_, numClasses_;
    std::vector<double> w_; //!< [class][feature+bias], row-major
};

} // namespace st

#endif // ST_TNN_LSM_HPP
