#include "tnn/lsm.hpp"

#include <algorithm>
#include <stdexcept>

namespace st {

Reservoir::Reservoir(const ReservoirParams &params)
    : params_(params)
{
    if (params_.numInputs == 0 || params_.numNeurons == 0)
        throw std::invalid_argument("Reservoir: needs inputs & neurons");
    if (params_.leak < 0.0 || params_.leak >= 1.0)
        throw std::invalid_argument("Reservoir: leak must be in [0,1)");

    Rng rng(params_.seed);
    const auto n = static_cast<uint32_t>(params_.numNeurons);

    // Inhibitory identities are fixed per neuron (Dale's law-ish).
    std::vector<bool> inhibitory(n);
    for (uint32_t j = 0; j < n; ++j)
        inhibitory[j] = !rng.chance(params_.excitatoryFraction);

    for (uint32_t from = 0; from < n; ++from) {
        for (uint32_t to = 0; to < n; ++to) {
            if (from == to || !rng.chance(params_.connectProb))
                continue;
            double w = params_.weightScale * (0.5 + rng.uniform());
            if (inhibitory[from])
                w = -w;
            edges_.push_back({from, to, w});
        }
    }

    inputFan_.resize(params_.numInputs);
    inputW_.resize(params_.numInputs);
    for (size_t c = 0; c < params_.numInputs; ++c) {
        for (uint32_t j = 0; j < n; ++j) {
            if (rng.chance(params_.inputProb)) {
                inputFan_[c].push_back(j);
                inputW_[c].push_back(params_.inputScale *
                                     (0.5 + rng.uniform()));
            }
        }
    }

    reset();
}

void
Reservoir::reset()
{
    potential_.assign(params_.numNeurons, 0.0);
    refractory_.assign(params_.numNeurons, 0);
    firedLast_.assign(params_.numNeurons, 0);
    traces_.assign(params_.numNeurons, 0.0);
    spikeCount_ = 0;
}

std::vector<uint32_t>
Reservoir::step(std::span<const uint32_t> input_channels)
{
    const size_t n = params_.numNeurons;

    // Leak, then integrate last step's recurrent spikes and this
    // step's input spikes.
    for (size_t j = 0; j < n; ++j)
        potential_[j] *= params_.leak;
    for (const Edge &e : edges_) {
        if (firedLast_[e.from])
            potential_[e.to] += e.weight;
    }
    for (uint32_t c : input_channels) {
        if (c >= params_.numInputs)
            throw std::out_of_range("Reservoir: bad input channel");
        for (size_t k = 0; k < inputFan_[c].size(); ++k)
            potential_[inputFan_[c][k]] += inputW_[c][k];
    }

    // Fire, reset, refract; update readout traces.
    std::vector<uint32_t> fired;
    for (size_t j = 0; j < n; ++j) {
        traces_[j] *= params_.traceLeak;
        if (refractory_[j] > 0) {
            --refractory_[j];
            firedLast_[j] = 0;
            continue;
        }
        if (potential_[j] >= params_.threshold) {
            fired.push_back(static_cast<uint32_t>(j));
            potential_[j] = 0.0;
            refractory_[j] = params_.refractory;
            firedLast_[j] = 1;
            traces_[j] += 1.0;
            ++spikeCount_;
        } else {
            firedLast_[j] = 0;
        }
    }
    return fired;
}

size_t
Reservoir::runVolley(std::span<const Time> volley, size_t total_steps)
{
    if (volley.size() != params_.numInputs)
        throw std::invalid_argument("Reservoir: volley arity mismatch");
    size_t spikes = 0;
    for (size_t t = 0; t < total_steps; ++t) {
        std::vector<uint32_t> channels;
        for (size_t c = 0; c < volley.size(); ++c) {
            if (volley[c].isFinite() && volley[c].value() == t)
                channels.push_back(static_cast<uint32_t>(c));
        }
        spikes += step(channels).size();
    }
    return spikes;
}

LinearReadout::LinearReadout(size_t num_features, size_t num_classes,
                             uint64_t seed)
    : numFeatures_(num_features), numClasses_(num_classes)
{
    if (num_features == 0 || num_classes == 0)
        throw std::invalid_argument("LinearReadout: empty dimensions");
    Rng rng(seed);
    w_.resize(num_classes * (num_features + 1));
    for (double &x : w_)
        x = 0.01 * (2.0 * rng.uniform() - 1.0);
}

double
LinearReadout::score(std::span<const double> features, size_t c) const
{
    const double *row = &w_[c * (numFeatures_ + 1)];
    double s = row[numFeatures_]; // bias
    for (size_t i = 0; i < numFeatures_; ++i)
        s += row[i] * features[i];
    return s;
}

bool
LinearReadout::train(std::span<const double> features, size_t label,
                     double lr)
{
    if (features.size() != numFeatures_)
        throw std::invalid_argument("LinearReadout: feature arity");
    if (label >= numClasses_)
        throw std::out_of_range("LinearReadout: bad label");
    bool erred = false;
    for (size_t c = 0; c < numClasses_; ++c) {
        double target = c == label ? 1.0 : -1.0;
        double out = score(features, c) >= 0.0 ? 1.0 : -1.0;
        if (out != target) {
            erred = true;
            double *row = &w_[c * (numFeatures_ + 1)];
            for (size_t i = 0; i < numFeatures_; ++i)
                row[i] += lr * target * features[i];
            row[numFeatures_] += lr * target;
        }
    }
    return erred;
}

size_t
LinearReadout::classify(std::span<const double> features) const
{
    size_t best = 0;
    double best_score = score(features, 0);
    for (size_t c = 1; c < numClasses_; ++c) {
        double s = score(features, c);
        if (s > best_score) {
            best_score = s;
            best = c;
        }
    }
    return best;
}

} // namespace st
