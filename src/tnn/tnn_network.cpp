#include "tnn/tnn_network.hpp"

#include <stdexcept>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace st {

namespace {

/**
 * Per-lane ping-pong buffers for the batch forward pass: layer l reads
 * cur and writes next, then the two swap. Thread-local so every pool
 * worker reuses its own capacity across volleys — the steady state of
 * processBatchUpTo() allocates only the per-volley result vector.
 */
struct LaneScratch
{
    Volley cur, next;
};

LaneScratch &
laneScratch()
{
    static thread_local LaneScratch scratch;
    return scratch;
}

} // namespace

void
TnnNetwork::addLayer(const ColumnParams &params)
{
    if (!layers_.empty() &&
        params.numInputs != layers_.back().params().numNeurons) {
        throw std::invalid_argument("TnnNetwork: layer width mismatch");
    }
    layers_.emplace_back(params);
}

Volley
TnnNetwork::process(const Volley &input) const
{
    return processUpTo(input, layers_.size());
}

Volley
TnnNetwork::processUpTo(const Volley &input, size_t upto) const
{
    if (upto > layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    Volley v = input;
    for (size_t i = 0; i < upto; ++i)
        v = layers_[i].process(v);
    return v;
}

std::vector<Volley>
TnnNetwork::processBatch(std::span<const Volley> inputs,
                         size_t nthreads) const
{
    return processBatchUpTo(inputs, layers_.size(), nthreads);
}

std::vector<Volley>
TnnNetwork::processBatchUpTo(std::span<const Volley> inputs, size_t upto,
                             size_t nthreads) const
{
    if (upto > layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    ST_TRACE_SPAN("tnn.process_batch");
    std::vector<Volley> out(inputs.size());
    size_t lanes = nthreads == 0 ? ThreadPool::defaultThreads()
                                 : nthreads;
    // Per-layer spike counters, resolved once per batch (the name
    // lookup takes the registry mutex) and then one relaxed add per
    // (volley, layer) inside the lanes.
    ST_OBS_ONLY(std::vector<obs::Counter *> layer_spikes;
                layer_spikes.reserve(upto);
                for (size_t l = 0; l < upto; ++l) {
                    layer_spikes.push_back(
                        &obs::MetricsRegistry::instance().counter(
                            "tnn.layer" + std::to_string(l) +
                            ".spikes"));
                })
    // Volleys are independent; each lane writes only its own output
    // slots, so the batch result matches the serial loop exactly. The
    // per-lane scratch buffers keep layer-to-layer handoff free of
    // allocation.
    ThreadPool::shared().parallelFor(
        0, inputs.size(), 1,
        [&](size_t i) {
            LaneScratch &s = laneScratch();
            s.cur.assign(inputs[i].begin(), inputs[i].end());
            for (size_t l = 0; l < upto; ++l) {
                layers_[l].processInto(s.cur, s.next);
                std::swap(s.cur, s.next);
                ST_OBS_ONLY({
                    uint64_t spikes = 0;
                    for (const Time &t : s.cur)
                        spikes += t.isFinite();
                    layer_spikes[l]->add(spikes);
                })
            }
            out[i] = std::move(s.cur);
        },
        lanes);
    return out;
}

size_t
TnnNetwork::trainLayer(size_t layer_index, std::span<const Volley> data,
                       const StdpRule &rule, size_t epochs)
{
    if (layer_index >= layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    size_t fired = 0;
    for (size_t e = 0; e < epochs; ++e) {
        for (const Volley &sample : data) {
            Volley v = processUpTo(sample, layer_index);
            if (layers_[layer_index].trainStep(v, rule).winner)
                ++fired;
        }
    }
    return fired;
}

size_t
TnnNetwork::trainLayerBatched(size_t layer_index,
                              std::span<const Volley> data,
                              const StdpRule &rule, size_t epochs,
                              size_t nthreads)
{
    if (layer_index >= layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    ST_TRACE_SPAN("tnn.train_layer");
    size_t fired = 0;
    for (size_t e = 0; e < epochs; ++e) {
        std::vector<Volley> feed =
            processBatchUpTo(data, layer_index, nthreads);
        fired += layers_[layer_index].trainBatch(feed, rule, nthreads);
    }
    return fired;
}

} // namespace st
