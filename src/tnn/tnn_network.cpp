#include "tnn/tnn_network.hpp"

#include <stdexcept>

namespace st {

void
TnnNetwork::addLayer(const ColumnParams &params)
{
    if (!layers_.empty() &&
        params.numInputs != layers_.back().params().numNeurons) {
        throw std::invalid_argument("TnnNetwork: layer width mismatch");
    }
    layers_.emplace_back(params);
}

Volley
TnnNetwork::process(const Volley &input) const
{
    return processUpTo(input, layers_.size());
}

Volley
TnnNetwork::processUpTo(const Volley &input, size_t upto) const
{
    if (upto > layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    Volley v = input;
    for (size_t i = 0; i < upto; ++i)
        v = layers_[i].process(v);
    return v;
}

size_t
TnnNetwork::trainLayer(size_t layer_index, std::span<const Volley> data,
                       const StdpRule &rule, size_t epochs)
{
    if (layer_index >= layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    size_t fired = 0;
    for (size_t e = 0; e < epochs; ++e) {
        for (const Volley &sample : data) {
            Volley v = processUpTo(sample, layer_index);
            if (layers_[layer_index].trainStep(v, rule).winner)
                ++fired;
        }
    }
    return fired;
}

} // namespace st
