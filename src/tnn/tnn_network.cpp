#include "tnn/tnn_network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/properties.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "util/task_graph.hpp"
#include "util/thread_pool.hpp"

namespace st {

namespace {

/**
 * Per-thread layer-output buffer of the batch engine: a stage reads a
 * volley in place and writes here, then the two swap. Thread-local so
 * every runner reuses capacity across volleys and stages — the steady
 * state of the pipelined pass allocates only the per-volley result
 * vectors.
 */
Volley &
stageScratch()
{
    static thread_local Volley scratch;
    return scratch;
}

/**
 * Runtime guard checks on one observed layer application (input @p in
 * already carries any volley-boundary injection; @p out is the layer's
 * inhibited output). The sampled invariance check re-runs the layer on
 * a +1-shifted copy — the injector's synapse-delay draws are
 * input-independent, so the re-run sees the identical faults and the
 * comparison is exact.
 */
void
checkLayerGuards(const Column &layer, size_t layer_index,
                 const Volley &in, const Volley &out, uint64_t stream,
                 uint32_t guards)
{
    auto where = [&] {
        return "tnn.layer" + std::to_string(layer_index) + ".volley" +
               std::to_string(stream);
    };
    const fault::GuardOptions opts = fault::activeGuardOptions();
    if (guards & fault::kGuardCausality) {
        PropertyReport r = checkCausalityObserved(in, out);
        if (!r.holds)
            fault::reportViolation("causality", where(),
                                   r.counterexample);
    }
    if (guards & fault::kGuardBoundedHistory) {
        PropertyReport r =
            checkBoundedObserved(in, out, opts.historyWindow);
        if (!r.holds)
            fault::reportViolation("bounded_history", where(),
                                   r.counterexample);
    }
    if ((guards & fault::kGuardInvariance) &&
        opts.invarianceSampleEvery != 0 &&
        stream % opts.invarianceSampleEvery == 0) {
        static thread_local Volley shifted_in, shifted_out;
        shifted_in.resize(in.size());
        for (size_t j = 0; j < in.size(); ++j)
            shifted_in[j] = in[j] + 1;
        layer.processInto(shifted_in, shifted_out);
        PropertyReport r = checkShiftConsistency(out, shifted_out, 1);
        if (!r.holds)
            fault::reportViolation("invariance", where(),
                                   r.counterexample);
    }
}

/** One layer application plus whatever guards are active. */
inline void
applyLayer(const Column &layer, size_t layer_index, const Volley &in,
           Volley &out, uint64_t stream)
{
    layer.processInto(in, out);
    if (const uint32_t guards = fault::activeGuardFlags())
        checkLayerGuards(layer, layer_index, in, out, stream, guards);
}

/**
 * Volleys per dataflow block: ~4 blocks per lane keeps every lane fed
 * while a fast block runs ahead through later layers, clamped so tiny
 * batches still spread across lanes and huge ones amortize the graph
 * bookkeeping. A pure function of (n, lanes); the per-volley results
 * never depend on the blocking.
 */
size_t
pipelineBlockSize(size_t n, size_t lanes)
{
    return std::clamp<size_t>(n / (4 * lanes), 1, 32);
}

/**
 * The pipelined block-dataflow pass shared by inference and training
 * (DESIGN.md Sec. 11). Volleys are sharded into blocks; block B's
 * stage s — copy-and-perturb folded into layer 0, one layer per stage
 * after that — is a TaskGraph node depending only on block B's stage
 * s-1, so layer N+1 of block B runs while layer N of block B+1 is in
 * flight; there is no batch-wide layer barrier. Each volley's chain
 * computes exactly what the serial loop computes, and every stage
 * writes only its own block's out slots, so the result is
 * bit-identical at any thread count. Fault draws are keyed by the
 * volley index i (the stream id), never by lane or block.
 *
 * @p tail, when set, runs per volley at the end of its block's last
 * stage — the training pass fuses its winner scan here instead of
 * paying a second full-batch sweep behind a barrier.
 */
void
runBlockPipeline(const std::vector<Column> &layers, size_t upto,
                 std::span<const Volley> inputs, std::vector<Volley> &out,
                 size_t lanes, const std::function<void(size_t)> &tail)
{
    const size_t n = inputs.size();
    const fault::FaultInjector *inj = fault::activeInjector();
    // Per-layer spike counters, resolved once per batch (the name
    // lookup takes the registry mutex) and then one relaxed add per
    // (volley, layer) inside the stages.
    ST_OBS_ONLY(std::vector<obs::Counter *> layer_spikes;
                layer_spikes.reserve(upto);
                for (size_t l = 0; l < upto; ++l) {
                    layer_spikes.push_back(
                        &obs::MetricsRegistry::instance().counter(
                            "tnn.layer" + std::to_string(l) +
                            ".spikes"));
                })

    // One volley's stage-s step: stage 0 materializes the (perturbed)
    // input into its out slot; every stage then advances the slot by
    // one layer through the thread-local scratch swap.
    auto step = [&](size_t i, size_t s) {
        if (s == 0) {
            out[i].assign(inputs[i].begin(), inputs[i].end());
            if (inj != nullptr)
                inj->perturbVolley(out[i], i);
        }
        if (s < upto) {
            Volley &next = stageScratch();
            applyLayer(layers[s], s, out[i], next, i);
            std::swap(out[i], next);
            ST_OBS_ONLY({
                uint64_t spikes = 0;
                for (const Time &t : out[i])
                    spikes += t.isFinite();
                layer_spikes[s]->add(spikes);
            })
        }
    };

    const size_t stages = std::max<size_t>(upto, 1);
    const size_t block = pipelineBlockSize(n, lanes);
    const size_t nblocks = (n + block - 1) / block;
    const bool serial = lanes <= 1 || nblocks <= 1 ||
                        ThreadPool::shared().size() == 0 ||
                        ThreadPool::onWorkerThread() ||
                        ThreadPool::inParallelRegion();
    if (serial) {
        for (size_t i = 0; i < n; ++i) {
            for (size_t s = 0; s < stages; ++s)
                step(i, s);
            if (tail)
                tail(i);
        }
        return;
    }

    ST_OBS_ADD("tnn.pipeline.blocks", nblocks);
    TaskGraph graph(ThreadPool::shared(), lanes);
    for (size_t b = 0; b < nblocks; ++b) {
        const size_t lo = b * block;
        const size_t hi = std::min(n, lo + block);
        TaskGraph::Ticket prev = 0;
        for (size_t s = 0; s < stages; ++s) {
            const bool last = s + 1 == stages;
            auto node = [&, lo, hi, s, last] {
                ST_OBS_ADD("tnn.pipeline.stages", 1);
                for (size_t i = lo; i < hi; ++i) {
                    step(i, s);
                    if (last && tail)
                        tail(i);
                }
            };
            prev = s == 0 ? graph.submit(node)
                          : graph.submit(node, {prev});
        }
    }
    graph.wait();
}

} // namespace

void
TnnNetwork::addLayer(const ColumnParams &params)
{
    if (!layers_.empty() &&
        params.numInputs != layers_.back().params().numNeurons) {
        throw std::invalid_argument("TnnNetwork: layer width mismatch");
    }
    layers_.emplace_back(params);
}

void
TnnNetwork::addLayer(Column column)
{
    if (!layers_.empty() &&
        column.params().numInputs != layers_.back().params().numNeurons) {
        throw std::invalid_argument("TnnNetwork: layer width mismatch");
    }
    layers_.push_back(std::move(column));
}

Volley
TnnNetwork::process(const Volley &input) const
{
    return processUpTo(input, layers_.size());
}

Volley
TnnNetwork::processUpTo(const Volley &input, size_t upto) const
{
    if (upto > layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    // The serial path is stream 0 of the fault model, matching
    // processBatchUpTo() on a one-volley batch bit-for-bit.
    Volley cur = input, next;
    if (const fault::FaultInjector *inj = fault::activeInjector())
        inj->perturbVolley(cur, 0);
    for (size_t i = 0; i < upto; ++i) {
        applyLayer(layers_[i], i, cur, next, 0);
        std::swap(cur, next);
    }
    return cur;
}

std::vector<Volley>
TnnNetwork::processBatch(std::span<const Volley> inputs,
                         size_t nthreads) const
{
    return processBatchUpTo(inputs, layers_.size(), nthreads);
}

std::vector<Volley>
TnnNetwork::processBatchUpTo(std::span<const Volley> inputs, size_t upto,
                             size_t nthreads) const
{
    if (upto > layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    ST_TRACE_SPAN("tnn.process_batch");
    std::vector<Volley> out(inputs.size());
    const size_t lanes = nthreads == 0 ? ThreadPool::defaultThreads()
                                       : nthreads;
    runBlockPipeline(layers_, upto, inputs, out, lanes, nullptr);
    return out;
}

size_t
TnnNetwork::trainLayer(size_t layer_index, std::span<const Volley> data,
                       const StdpRule &rule, size_t epochs)
{
    if (layer_index >= layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    size_t fired = 0;
    for (size_t e = 0; e < epochs; ++e) {
        for (const Volley &sample : data) {
            Volley v = processUpTo(sample, layer_index);
            if (layers_[layer_index].trainStep(v, rule).winner)
                ++fired;
        }
    }
    return fired;
}

size_t
TnnNetwork::trainLayerBatched(size_t layer_index,
                              std::span<const Volley> data,
                              const StdpRule &rule, size_t epochs,
                              size_t nthreads)
{
    if (layer_index >= layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    ST_TRACE_SPAN("tnn.train_layer");
    const size_t n = data.size();
    if (n == 0 || epochs == 0)
        return 0;
    Column &train = layers_[layer_index];
    const size_t lanes = nthreads == 0 ? ThreadPool::defaultThreads()
                                       : nthreads;
    size_t fired = 0;
    // Reused across epochs: the frozen-layer outputs each sample was
    // scanned on (the merge needs the winners' input volleys) and the
    // per-sample winner slots.
    std::vector<Volley> feed(n);
    std::vector<std::optional<TrainEvent>> slots(n);
    for (size_t e = 0; e < epochs; ++e) {
        // One fused pipelined pass per epoch: the winner scan rides as
        // the tail of each block's last forward stage, against the
        // epoch-start weights and fatigue (mini-batch semantics; the
        // scan is const and thread-safe). The serial sample-order
        // merge runs once, here at the epoch boundary, so the trained
        // weights are bit-identical at every thread count.
        const size_t least_wins = train.leastWins();
        ST_OBS_ADD("tnn.train_samples", n);
        runBlockPipeline(layers_, layer_index, data, feed, lanes,
                         [&](size_t i) {
                             slots[i] = train.scanWinner(feed[i],
                                                         least_wins);
                             if (slots[i])
                                 slots[i]->sample = i;
                         });
        fired += train.applyTrainEvents(slots, feed, rule);
    }
    return fired;
}

} // namespace st
