#include "tnn/tnn_network.hpp"

#include <stdexcept>
#include <string>

#include "core/properties.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace st {

namespace {

/**
 * Per-lane ping-pong buffers for the batch forward pass: layer l reads
 * cur and writes next, then the two swap. Thread-local so every pool
 * worker reuses its own capacity across volleys — the steady state of
 * processBatchUpTo() allocates only the per-volley result vector.
 */
struct LaneScratch
{
    Volley cur, next;
};

LaneScratch &
laneScratch()
{
    static thread_local LaneScratch scratch;
    return scratch;
}

/**
 * Runtime guard checks on one observed layer application (input @p in
 * already carries any volley-boundary injection; @p out is the layer's
 * inhibited output). The sampled invariance check re-runs the layer on
 * a +1-shifted copy — the injector's synapse-delay draws are
 * input-independent, so the re-run sees the identical faults and the
 * comparison is exact.
 */
void
checkLayerGuards(const Column &layer, size_t layer_index,
                 const Volley &in, const Volley &out, uint64_t stream,
                 uint32_t guards)
{
    auto where = [&] {
        return "tnn.layer" + std::to_string(layer_index) + ".volley" +
               std::to_string(stream);
    };
    const fault::GuardOptions opts = fault::activeGuardOptions();
    if (guards & fault::kGuardCausality) {
        PropertyReport r = checkCausalityObserved(in, out);
        if (!r.holds)
            fault::reportViolation("causality", where(),
                                   r.counterexample);
    }
    if (guards & fault::kGuardBoundedHistory) {
        PropertyReport r =
            checkBoundedObserved(in, out, opts.historyWindow);
        if (!r.holds)
            fault::reportViolation("bounded_history", where(),
                                   r.counterexample);
    }
    if ((guards & fault::kGuardInvariance) &&
        opts.invarianceSampleEvery != 0 &&
        stream % opts.invarianceSampleEvery == 0) {
        static thread_local Volley shifted_in, shifted_out;
        shifted_in.resize(in.size());
        for (size_t j = 0; j < in.size(); ++j)
            shifted_in[j] = in[j] + 1;
        layer.processInto(shifted_in, shifted_out);
        PropertyReport r = checkShiftConsistency(out, shifted_out, 1);
        if (!r.holds)
            fault::reportViolation("invariance", where(),
                                   r.counterexample);
    }
}

/** One layer application plus whatever guards are active. */
inline void
applyLayer(const Column &layer, size_t layer_index, const Volley &in,
           Volley &out, uint64_t stream)
{
    layer.processInto(in, out);
    if (const uint32_t guards = fault::activeGuardFlags())
        checkLayerGuards(layer, layer_index, in, out, stream, guards);
}

} // namespace

void
TnnNetwork::addLayer(const ColumnParams &params)
{
    if (!layers_.empty() &&
        params.numInputs != layers_.back().params().numNeurons) {
        throw std::invalid_argument("TnnNetwork: layer width mismatch");
    }
    layers_.emplace_back(params);
}

Volley
TnnNetwork::process(const Volley &input) const
{
    return processUpTo(input, layers_.size());
}

Volley
TnnNetwork::processUpTo(const Volley &input, size_t upto) const
{
    if (upto > layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    // The serial path is stream 0 of the fault model, matching
    // processBatchUpTo() on a one-volley batch bit-for-bit.
    Volley cur = input, next;
    if (const fault::FaultInjector *inj = fault::activeInjector())
        inj->perturbVolley(cur, 0);
    for (size_t i = 0; i < upto; ++i) {
        applyLayer(layers_[i], i, cur, next, 0);
        std::swap(cur, next);
    }
    return cur;
}

std::vector<Volley>
TnnNetwork::processBatch(std::span<const Volley> inputs,
                         size_t nthreads) const
{
    return processBatchUpTo(inputs, layers_.size(), nthreads);
}

std::vector<Volley>
TnnNetwork::processBatchUpTo(std::span<const Volley> inputs, size_t upto,
                             size_t nthreads) const
{
    if (upto > layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    ST_TRACE_SPAN("tnn.process_batch");
    std::vector<Volley> out(inputs.size());
    size_t lanes = nthreads == 0 ? ThreadPool::defaultThreads()
                                 : nthreads;
    // Per-layer spike counters, resolved once per batch (the name
    // lookup takes the registry mutex) and then one relaxed add per
    // (volley, layer) inside the lanes.
    ST_OBS_ONLY(std::vector<obs::Counter *> layer_spikes;
                layer_spikes.reserve(upto);
                for (size_t l = 0; l < upto; ++l) {
                    layer_spikes.push_back(
                        &obs::MetricsRegistry::instance().counter(
                            "tnn.layer" + std::to_string(l) +
                            ".spikes"));
                })
    // Volleys are independent; each lane writes only its own output
    // slots, so the batch result matches the serial loop exactly. The
    // per-lane scratch buffers keep layer-to-layer handoff free of
    // allocation. Fault draws are keyed by the volley index i (the
    // stream id), never by lane, so faulted batches stay bit-identical
    // at every thread count.
    const fault::FaultInjector *inj = fault::activeInjector();
    ThreadPool::shared().parallelFor(
        0, inputs.size(), 1,
        [&](size_t i) {
            LaneScratch &s = laneScratch();
            s.cur.assign(inputs[i].begin(), inputs[i].end());
            if (inj != nullptr)
                inj->perturbVolley(s.cur, i);
            for (size_t l = 0; l < upto; ++l) {
                applyLayer(layers_[l], l, s.cur, s.next, i);
                std::swap(s.cur, s.next);
                ST_OBS_ONLY({
                    uint64_t spikes = 0;
                    for (const Time &t : s.cur)
                        spikes += t.isFinite();
                    layer_spikes[l]->add(spikes);
                })
            }
            out[i] = std::move(s.cur);
        },
        lanes);
    return out;
}

size_t
TnnNetwork::trainLayer(size_t layer_index, std::span<const Volley> data,
                       const StdpRule &rule, size_t epochs)
{
    if (layer_index >= layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    size_t fired = 0;
    for (size_t e = 0; e < epochs; ++e) {
        for (const Volley &sample : data) {
            Volley v = processUpTo(sample, layer_index);
            if (layers_[layer_index].trainStep(v, rule).winner)
                ++fired;
        }
    }
    return fired;
}

size_t
TnnNetwork::trainLayerBatched(size_t layer_index,
                              std::span<const Volley> data,
                              const StdpRule &rule, size_t epochs,
                              size_t nthreads)
{
    if (layer_index >= layers_.size())
        throw std::out_of_range("TnnNetwork: layer index out of range");
    ST_TRACE_SPAN("tnn.train_layer");
    size_t fired = 0;
    for (size_t e = 0; e < epochs; ++e) {
        std::vector<Volley> feed =
            processBatchUpTo(data, layer_index, nthreads);
        fired += layers_[layer_index].trainBatch(feed, rule, nthreads);
    }
    return fired;
}

} // namespace st
