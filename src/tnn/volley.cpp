#include "tnn/volley.hpp"

#include <cmath>

namespace st {

Volley
encodeValues(std::span<const std::optional<uint64_t>> values)
{
    Volley v;
    v.reserve(values.size());
    for (const auto &value : values)
        v.push_back(value ? Time(*value) : INF);
    Normalized norm = normalize(v);
    return norm.values;
}

Volley
encodeValues(std::span<const uint64_t> values)
{
    std::vector<std::optional<uint64_t>> opt(values.begin(), values.end());
    return encodeValues(opt);
}

std::vector<std::optional<uint64_t>>
decodeValues(std::span<const Time> v)
{
    Normalized norm = normalize(v);
    std::vector<std::optional<uint64_t>> out;
    out.reserve(v.size());
    for (Time t : norm.values) {
        if (t.isInf())
            out.push_back(std::nullopt);
        else
            out.push_back(t.value());
    }
    return out;
}

Volley
quantizeIntensities(std::span<const double> intensities,
                    unsigned resolution_bits, double cutoff)
{
    const uint64_t levels = uint64_t{1} << resolution_bits;
    Volley v;
    v.reserve(intensities.size());
    for (double x : intensities) {
        double clamped = std::min(std::max(x, 0.0), 1.0);
        if (clamped < cutoff) {
            v.push_back(INF);
            continue;
        }
        // Strong inputs spike early: intensity 1 -> time 0,
        // intensity ~0 -> time levels-1.
        auto t = static_cast<uint64_t>(
            std::llround((1.0 - clamped) * static_cast<double>(levels - 1)));
        v.push_back(Time(t));
    }
    return v;
}

CodingStats
codingStats(std::span<const Time> volley, unsigned resolution_bits)
{
    CodingStats s;
    s.lines = volley.size();
    s.resolutionBits = resolution_bits;
    s.messageTime = uint64_t{1} << resolution_bits;
    for (Time t : volley) {
        if (t.isFinite())
            ++s.spikes;
    }
    s.bitsConveyed =
        static_cast<double>(s.lines) * static_cast<double>(resolution_bits);
    s.bitsPerSpike =
        s.spikes ? s.bitsConveyed / static_cast<double>(s.spikes) : 0.0;
    return s;
}

bool
isNormalizedVolley(std::span<const Time> v)
{
    Time m = minOf(v);
    return m.isInf() || m == 0_t;
}

} // namespace st
