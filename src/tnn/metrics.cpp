#include "tnn/metrics.hpp"

#include <set>
#include <stdexcept>

#include "util/table.hpp"

namespace st {

ConfusionMatrix::ConfusionMatrix(size_t num_clusters, size_t num_labels)
    : numClusters_(num_clusters), numLabels_(num_labels),
      counts_(num_clusters * num_labels, 0)
{
    if (num_clusters == 0 || num_labels == 0)
        throw std::invalid_argument("ConfusionMatrix: empty dimensions");
}

void
ConfusionMatrix::add(std::optional<size_t> cluster, size_t label)
{
    if (label >= numLabels_)
        throw std::out_of_range("ConfusionMatrix: bad label");
    ++total_;
    if (!cluster) {
        ++unassigned_;
        return;
    }
    if (*cluster >= numClusters_)
        throw std::out_of_range("ConfusionMatrix: bad cluster");
    ++counts_[*cluster * numLabels_ + label];
}

size_t
ConfusionMatrix::at(size_t cluster, size_t label) const
{
    if (cluster >= numClusters_ || label >= numLabels_)
        throw std::out_of_range("ConfusionMatrix: bad cell");
    return counts_[cluster * numLabels_ + label];
}

double
ConfusionMatrix::coverage() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(total_ - unassigned_) /
           static_cast<double>(total_);
}

double
ConfusionMatrix::purity() const
{
    if (total_ == 0)
        return 0.0;
    size_t hits = 0;
    for (size_t c = 0; c < numClusters_; ++c) {
        size_t best = 0;
        for (size_t l = 0; l < numLabels_; ++l)
            best = std::max(best, at(c, l));
        hits += best;
    }
    return static_cast<double>(hits) / static_cast<double>(total_);
}

std::vector<std::optional<size_t>>
ConfusionMatrix::majorityAssignment() const
{
    std::vector<std::optional<size_t>> assignment(numClusters_);
    for (size_t c = 0; c < numClusters_; ++c) {
        size_t best = 0;
        for (size_t l = 0; l < numLabels_; ++l) {
            if (at(c, l) > best) {
                best = at(c, l);
                assignment[c] = l;
            }
        }
    }
    return assignment;
}

double
ConfusionMatrix::accuracy() const
{
    if (total_ == 0)
        return 0.0;
    auto assignment = majorityAssignment();
    size_t hits = 0;
    for (size_t c = 0; c < numClusters_; ++c) {
        if (assignment[c])
            hits += at(c, *assignment[c]);
    }
    return static_cast<double>(hits) / static_cast<double>(total_);
}

size_t
ConfusionMatrix::distinctLabelsCovered() const
{
    std::set<size_t> labels;
    for (const auto &label : majorityAssignment()) {
        if (label)
            labels.insert(*label);
    }
    return labels.size();
}

std::string
ConfusionMatrix::str() const
{
    std::vector<std::string> header{"neuron\\label"};
    for (size_t l = 0; l < numLabels_; ++l)
        header.push_back("L" + std::to_string(l));
    AsciiTable table(header);
    for (size_t c = 0; c < numClusters_; ++c) {
        std::vector<std::string> row{"N" + std::to_string(c)};
        for (size_t l = 0; l < numLabels_; ++l)
            row.push_back(std::to_string(at(c, l)));
        table.addRow(row);
    }
    return table.str();
}

} // namespace st
