/**
 * @file
 * Synthetic workload generators for TNN experiments.
 *
 * The paper's surveyed applications are pattern clustering/classification
 * on temporally coded inputs (Sec. II.C) and the Bichler et al. freeway
 * tracker (Fig. 4), whose DVS recordings are proprietary. Per the
 * reproduction's substitution policy (DESIGN.md Sec. 5), both are
 * replaced by parameterized synthetic generators that exercise the same
 * code paths: jittered temporal prototypes for clustering, and an AER
 * event stream of cars crossing lane sensors for the tracker.
 */

#ifndef ST_TNN_DATASETS_HPP
#define ST_TNN_DATASETS_HPP

#include <cstdint>
#include <vector>

#include "tnn/aer.hpp"
#include "tnn/volley.hpp"
#include "util/rng.hpp"

namespace st {

/** A volley with its ground-truth class. */
struct LabeledVolley
{
    Volley volley;
    size_t label = 0;
};

/** Parameters of the jittered-prototype pattern source. */
struct PatternSetParams
{
    size_t numClasses = 4;
    size_t numLines = 16;
    Time::rep timeSpan = 7;   //!< prototype values in [0, timeSpan]
    double jitter = 0.6;      //!< per-spike gaussian time jitter (stddev)
    double dropProb = 0.05;   //!< per-spike deletion probability
    double silentProb = 0.25; //!< per-line no-spike probability in protos
    uint64_t seed = 42;
};

/**
 * A set of random temporal prototypes plus a jittered sampler: the
 * canonical clustering workload for STDP TNNs (Masquelier-style).
 */
class PatternDataset
{
  public:
    explicit PatternDataset(const PatternSetParams &params);

    /** The noiseless class prototypes (normalized volleys). */
    const std::vector<Volley> &prototypes() const { return prototypes_; }

    /** Dataset parameters. */
    const PatternSetParams &params() const { return params_; }

    /** Draw one jittered sample of class @p label. */
    LabeledVolley sample(size_t label);

    /** Draw @p count samples with uniformly random labels. */
    std::vector<LabeledVolley> sampleMany(size_t count);

  private:
    PatternSetParams params_;
    std::vector<Volley> prototypes_;
    Rng rng_;
};

/** Parameters of the shifted-motif source (translation invariance). */
struct ShiftedPatternParams
{
    size_t numClasses = 3;
    size_t motifWidth = 6;   //!< lines a motif occupies
    size_t inputWidth = 24;  //!< total sensor lines
    Time::rep timeSpan = 7;  //!< motif spike values in [0, timeSpan]
    double jitter = 0.3;     //!< per-spike gaussian time jitter
    double dropProb = 0.02;  //!< per-spike deletion probability
    double silentProb = 0.2; //!< per-line no-spike probability in motifs
    double noiseProb = 0.0;  //!< background spike probability per line
    uint64_t seed = 99;
};

/** A sample annotated with where its motif was placed. */
struct PlacedVolley
{
    Volley volley;
    size_t label = 0;
    size_t offset = 0; //!< first line of the motif
};

/**
 * Motifs placed at random positions in a wide sensor array — the
 * workload that separates position-bound columns from weight-shared
 * convolutional layers (Kheradpisheh-style architectures, paper
 * Sec. II.C). A fixed detector must relearn each position; a conv
 * layer with temporal pooling recognizes the motif anywhere.
 */
class ShiftedPatternDataset
{
  public:
    explicit ShiftedPatternDataset(const ShiftedPatternParams &params);

    /** The noiseless motif prototypes (width = motifWidth). */
    const std::vector<Volley> &motifs() const { return motifs_; }

    const ShiftedPatternParams &params() const { return params_; }

    /** Largest valid placement offset. */
    size_t maxOffset() const;

    /** Draw one sample with the given class and placement. */
    PlacedVolley sample(size_t label, size_t offset);

    /** Draw one sample with random class and placement. */
    PlacedVolley sample();

    /** Draw @p count random samples (labels only). */
    std::vector<LabeledVolley> sampleMany(size_t count);

  private:
    ShiftedPatternParams params_;
    std::vector<Volley> motifs_;
    Rng rng_;
};

/** Parameters of the synthetic freeway (Fig. 4 substitute). */
struct FreewayParams
{
    size_t lanes = 3;
    size_t sensorsPerLane = 8;
    /** Time units for a car to travel between adjacent sensors, per
     *  lane; lane l uses spacing[l % spacing.size()]. */
    std::vector<uint64_t> sensorSpacing = {2, 3, 4};
    double jitter = 0.4;      //!< gaussian jitter on each sensor event
    double missProb = 0.05;   //!< sensor miss probability
    uint64_t interCarGap = 64; //!< quiet time between passes
    uint64_t seed = 7;
};

/**
 * Generates cars crossing lanes of an AER sensor array.
 *
 * Each pass produces a burst of events on addresses
 * lane * sensorsPerLane + position with lane-specific timing. Passes are
 * well separated so a window slice isolates one car.
 */
class FreewayGenerator
{
  public:
    explicit FreewayGenerator(const FreewayParams &params);

    /** Total AER address count (lanes * sensorsPerLane). */
    uint32_t numAddresses() const;

    /** Window width that safely contains one pass. */
    uint64_t windowSize() const;

    /**
     * Generate @p passes car passes (random lanes) as one AER stream;
     * @p labels_out receives the lane of each pass in order.
     */
    AerStream generateStream(size_t passes, std::vector<size_t> &labels_out);

    /** Generate labeled per-pass volleys (stream sliced by window). */
    std::vector<LabeledVolley> generate(size_t passes);

  private:
    FreewayParams params_;
    Rng rng_;
};

} // namespace st

#endif // ST_TNN_DATASETS_HPP
