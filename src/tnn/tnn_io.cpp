#include "tnn/tnn_io.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "fault/status.hpp"

namespace st {

namespace {

const char *
shapeName(ResponseShape shape)
{
    switch (shape) {
      case ResponseShape::Step:
        return "step";
      case ResponseShape::Biexponential:
        return "biexp";
      case ResponseShape::PiecewiseLinear:
        return "pwl";
    }
    return "?";
}

ResponseShape
shapeFromName(const std::string &name, size_t line_no)
{
    if (name == "step")
        return ResponseShape::Step;
    if (name == "biexp")
        return ResponseShape::Biexponential;
    if (name == "pwl")
        return ResponseShape::PiecewiseLinear;
    throw std::invalid_argument("tnn_io: line " +
                                std::to_string(line_no) +
                                ": unknown shape '" + name + "'");
}

/** Tokenized line reader skipping blanks and '#' comments. */
class LineReader
{
  public:
    explicit LineReader(const std::string &text) : in_(text) {}

    bool
    next(std::vector<std::string> &toks)
    {
        toks.clear();
        std::string line;
        while (std::getline(in_, line)) {
            ++lineNo_;
            auto hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            std::istringstream fields(line);
            std::string tok;
            while (fields >> tok)
                toks.push_back(tok);
            if (!toks.empty())
                return true;
        }
        return false;
    }

    [[noreturn]] void
    fail(const std::string &what) const
    {
        // Render through st::Status (code/message/context) instead of
        // concatenating the line number by hand.
        const Status status(StatusCode::InvalidArgument, what,
                            "line " + std::to_string(lineNo_));
        throw std::invalid_argument("tnn_io: " + status.toString());
    }

    size_t lineNo() const { return lineNo_; }

  private:
    std::istringstream in_;
    size_t lineNo_ = 0;
};

/** Strict unsigned parse: all digits, in range — or fail with @p what. */
uint64_t
parseUint(const LineReader &reader, const std::string &tok,
          const char *what)
{
    if (tok.empty() ||
        tok.find_first_not_of("0123456789") != std::string::npos)
        reader.fail(std::string("bad ") + what + " '" + tok + "'");
    try {
        return std::stoull(tok);
    } catch (const std::exception &) {
        reader.fail(std::string(what) + " out of range '" + tok + "'");
    }
}

/** Strict signed parse (optional leading '-'). */
int64_t
parseInt(const LineReader &reader, const std::string &tok,
         const char *what)
{
    const bool neg = !tok.empty() && tok[0] == '-';
    const uint64_t mag =
        parseUint(reader, neg ? tok.substr(1) : tok, what);
    return neg ? -static_cast<int64_t>(mag) : static_cast<int64_t>(mag);
}

/** Strict double parse: the whole token must convert — or fail. */
double
parseDouble(const LineReader &reader, const std::string &tok,
            const char *what)
{
    try {
        size_t pos = 0;
        double v = std::stod(tok, &pos);
        if (pos != tok.size())
            reader.fail(std::string("bad ") + what + " '" + tok + "'");
        return v;
    } catch (const std::invalid_argument &) {
        reader.fail(std::string("bad ") + what + " '" + tok + "'");
    } catch (const std::out_of_range &) {
        reader.fail(std::string(what) + " out of range '" + tok + "'");
    }
}

void
emitParams(std::ostringstream &os, const ColumnParams &p)
{
    os << "inputs " << p.numInputs << " neurons " << p.numNeurons
       << " threshold " << p.threshold << " maxweight " << p.maxWeight
       << " shape " << shapeName(p.shape) << "\n";
    os << "response " << p.tauSlow << ' ' << p.tauFast << ' ' << p.rise
       << ' ' << p.fall << "\n";
    os << "wta " << p.wtaTau << ' ' << p.wtaK << " fatigue "
       << p.fatigue << " init " << p.initWeight << ' ' << p.initJitter
       << " seed " << p.seed << "\n";
}

void
emitWeights(std::ostringstream &os, const std::vector<double> &w,
            size_t index)
{
    os << "weights " << index;
    os << std::setprecision(17);
    for (double x : w)
        os << ' ' << x;
    os << std::setprecision(6) << "\n";
}

ColumnParams
parseParams(LineReader &reader)
{
    std::vector<std::string> toks;
    ColumnParams p;
    if (!reader.next(toks) || toks.size() != 10 || toks[0] != "inputs" ||
        toks[2] != "neurons" || toks[4] != "threshold" ||
        toks[6] != "maxweight" || toks[8] != "shape") {
        reader.fail("expected 'inputs N neurons N threshold N "
                    "maxweight N shape S'");
    }
    p.numInputs = parseUint(reader, toks[1], "input count");
    p.numNeurons = parseUint(reader, toks[3], "neuron count");
    p.threshold = static_cast<ResponseFunction::Amp>(
        parseInt(reader, toks[5], "threshold"));
    p.maxWeight = parseUint(reader, toks[7], "maxweight");
    p.shape = shapeFromName(toks[9], reader.lineNo());

    if (!reader.next(toks) || toks.size() != 5 || toks[0] != "response")
        reader.fail("expected 'response tauSlow tauFast rise fall'");
    p.tauSlow = parseDouble(reader, toks[1], "tauSlow");
    p.tauFast = parseDouble(reader, toks[2], "tauFast");
    p.rise = parseUint(reader, toks[3], "rise");
    p.fall = parseUint(reader, toks[4], "fall");

    if (!reader.next(toks) || toks.size() != 10 || toks[0] != "wta" ||
        toks[3] != "fatigue" || toks[5] != "init" || toks[8] != "seed") {
        reader.fail("expected 'wta tau k fatigue F init w j seed s'");
    }
    p.wtaTau = parseUint(reader, toks[1], "wta tau");
    p.wtaK = parseUint(reader, toks[2], "wta k");
    p.fatigue = parseUint(reader, toks[4], "fatigue");
    p.initWeight = parseDouble(reader, toks[6], "init weight");
    p.initJitter = parseDouble(reader, toks[7], "init jitter");
    p.seed = parseUint(reader, toks[9], "seed");
    return p;
}

std::vector<double>
parseWeightsLine(LineReader &reader, const std::vector<std::string> &toks,
                 size_t expected_index, size_t expected_count)
{
    if (toks.size() != expected_count + 2 || toks[0] != "weights")
        reader.fail("expected 'weights <index> <values...>'");
    if (parseUint(reader, toks[1], "weights index") != expected_index)
        reader.fail("weights rows must appear in order");
    std::vector<double> w;
    w.reserve(expected_count);
    for (size_t i = 2; i < toks.size(); ++i)
        w.push_back(parseDouble(reader, toks[i], "weight"));
    return w;
}

} // namespace

std::string
columnToText(const Column &column)
{
    std::ostringstream os;
    os << "stcolumn 1\n";
    emitParams(os, column.params());
    for (size_t j = 0; j < column.params().numNeurons; ++j)
        emitWeights(os, column.weights(j), j);
    return os.str();
}

namespace {

/** Parse a column body after its header line has been consumed. */
Column
parseColumnBody(LineReader &reader)
{
    ColumnParams p = parseParams(reader);
    Column column(p);
    std::vector<std::string> toks;
    for (size_t j = 0; j < p.numNeurons; ++j) {
        if (!reader.next(toks))
            reader.fail("missing weights row");
        column.setWeights(
            j, parseWeightsLine(reader, toks, j, p.numInputs));
    }
    return column;
}

} // namespace

Column
columnFromText(const std::string &text)
{
    LineReader reader(text);
    std::vector<std::string> toks;
    if (!reader.next(toks) || toks.size() != 2 ||
        toks[0] != "stcolumn" || toks[1] != "1") {
        reader.fail("expected header 'stcolumn 1'");
    }
    return parseColumnBody(reader);
}

std::string
tnnToText(const TnnNetwork &net)
{
    std::ostringstream os;
    os << "sttnn 1\n";
    os << "layers " << net.numLayers() << "\n";
    for (size_t l = 0; l < net.numLayers(); ++l) {
        os << "layer " << l << "\n";
        const Column &column = net.layer(l);
        emitParams(os, column.params());
        for (size_t j = 0; j < column.params().numNeurons; ++j)
            emitWeights(os, column.weights(j), j);
    }
    return os.str();
}

TnnNetwork
tnnFromText(const std::string &text)
{
    LineReader reader(text);
    std::vector<std::string> toks;
    if (!reader.next(toks) || toks.size() != 2 || toks[0] != "sttnn" ||
        toks[1] != "1") {
        reader.fail("expected header 'sttnn 1'");
    }
    if (!reader.next(toks) || toks.size() != 2 || toks[0] != "layers")
        reader.fail("expected 'layers N'");
    size_t layers = parseUint(reader, toks[1], "layer count");

    TnnNetwork net;
    for (size_t l = 0; l < layers; ++l) {
        if (!reader.next(toks) || toks.size() != 2 ||
            toks[0] != "layer" ||
            parseUint(reader, toks[1], "layer index") != l) {
            reader.fail("expected 'layer " + std::to_string(l) + "'");
        }
        Column column = parseColumnBody(reader);
        net.addLayer(column.params());
        for (size_t j = 0; j < column.params().numNeurons; ++j)
            net.layer(l).setWeights(j, column.weights(j));
    }
    return net;
}

std::string
convToText(const Conv1dLayer &conv)
{
    const Conv1dParams &p = conv.params();
    std::ostringstream os;
    os << "stconv 1\n";
    os << "geometry " << p.inputWidth << ' ' << p.kernelSize << ' '
       << p.stride << ' ' << p.numFeatures << "\n";
    os << "neuron " << p.threshold << ' ' << p.maxWeight << ' '
       << shapeName(p.shape) << " fatigue " << p.fatigue << " init "
       << p.initWeight << ' ' << p.initJitter << " seed " << p.seed
       << "\n";
    for (size_t f = 0; f < p.numFeatures; ++f)
        emitWeights(os, conv.weights(f), f);
    return os.str();
}

Conv1dLayer
convFromText(const std::string &text)
{
    LineReader reader(text);
    std::vector<std::string> toks;
    if (!reader.next(toks) || toks.size() != 2 || toks[0] != "stconv" ||
        toks[1] != "1") {
        reader.fail("expected header 'stconv 1'");
    }
    Conv1dParams p;
    if (!reader.next(toks) || toks.size() != 5 || toks[0] != "geometry")
        reader.fail("expected 'geometry W k stride F'");
    p.inputWidth = parseUint(reader, toks[1], "input width");
    p.kernelSize = parseUint(reader, toks[2], "kernel size");
    p.stride = parseUint(reader, toks[3], "stride");
    p.numFeatures = parseUint(reader, toks[4], "feature count");

    if (!reader.next(toks) || toks.size() != 11 || toks[0] != "neuron" ||
        toks[4] != "fatigue" || toks[6] != "init" || toks[9] != "seed") {
        reader.fail("expected 'neuron theta W shape fatigue F init w j "
                    "seed s'");
    }
    p.threshold = static_cast<ResponseFunction::Amp>(
        parseInt(reader, toks[1], "threshold"));
    p.maxWeight = parseUint(reader, toks[2], "maxweight");
    p.shape = shapeFromName(toks[3], reader.lineNo());
    p.fatigue = parseUint(reader, toks[5], "fatigue");
    p.initWeight = parseDouble(reader, toks[7], "init weight");
    p.initJitter = parseDouble(reader, toks[8], "init jitter");
    p.seed = parseUint(reader, toks[10], "seed");

    Conv1dLayer conv(p);
    for (size_t f = 0; f < p.numFeatures; ++f) {
        if (!reader.next(toks))
            reader.fail("missing weights row");
        conv.setWeights(
            f, parseWeightsLine(reader, toks, f, p.kernelSize));
    }
    return conv;
}

} // namespace st
