#include "tnn/layer.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/fault.hpp"
#include "neuron/wta.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace st {

namespace {

/**
 * Columns at least this wide fan their neurons out across the shared
 * pool in rawFireTimes(); narrower ones stay serial (the parallel-for
 * bookkeeping would cost more than the neuron evaluations).
 */
constexpr size_t kParallelNeuronThreshold = 64;

/** Chunk granularity for the intra-column parallel-for. */
constexpr size_t kNeuronGrain = 16;

std::vector<ResponseFunction>
buildFamily(const ColumnParams &p)
{
    std::vector<ResponseFunction> family;
    family.reserve(p.maxWeight + 1);
    family.emplace_back();
    for (size_t w = 1; w <= p.maxWeight; ++w) {
        auto amp = static_cast<ResponseFunction::Amp>(w);
        switch (p.shape) {
          case ResponseShape::Step:
            family.push_back(ResponseFunction::step(amp));
            break;
          case ResponseShape::Biexponential:
            family.push_back(ResponseFunction::biexponential(
                amp, p.tauSlow, p.tauFast));
            break;
          case ResponseShape::PiecewiseLinear:
            family.push_back(
                ResponseFunction::piecewiseLinear(amp, p.rise, p.fall));
            break;
        }
    }
    return family;
}

} // namespace

Column::Column(const ColumnParams &params)
    : params_(params), family_(buildFamily(params))
{
    if (params_.numInputs == 0 || params_.numNeurons == 0)
        throw std::invalid_argument("Column: needs inputs and neurons");
    if (params_.threshold < 1)
        throw std::invalid_argument("Column: threshold must be >= 1");

    winCount_.assign(params_.numNeurons, 0);
    modelCache_.resize(params_.numNeurons);
    Rng rng(params_.seed);
    weights_.resize(params_.numNeurons);
    for (auto &w : weights_) {
        w.resize(params_.numInputs);
        for (double &x : w) {
            x = params_.initWeight +
                params_.initJitter * (2.0 * rng.uniform() - 1.0);
            x = std::clamp(x, 0.0, 1.0);
        }
    }
}

Column::Column(const ColumnParams &params,
               std::vector<std::vector<double>> weights)
    : params_(params), family_(buildFamily(params))
{
    if (params_.numInputs == 0 || params_.numNeurons == 0)
        throw std::invalid_argument("Column: needs inputs and neurons");
    if (params_.threshold < 1)
        throw std::invalid_argument("Column: threshold must be >= 1");
    if (weights.size() != params_.numNeurons)
        throw std::invalid_argument("Column: weight row count mismatch");
    for (const auto &w : weights)
        if (w.size() != params_.numInputs)
            throw std::invalid_argument("Column: weight arity mismatch");

    winCount_.assign(params_.numNeurons, 0);
    modelCache_.resize(params_.numNeurons);
    weights_ = std::move(weights);
}

Column::Column(const Column &other)
    : params_(other.params_), family_(other.family_),
      weights_(other.weights_), winCount_(other.winCount_),
      modelCache_(other.params_.numNeurons)
{
}

Column &
Column::operator=(const Column &other)
{
    if (this != &other) {
        params_ = other.params_;
        family_ = other.family_;
        weights_ = other.weights_;
        winCount_ = other.winCount_;
        modelCache_.clear();
        modelCache_.resize(params_.numNeurons);
    }
    return *this;
}

Srm0Neuron
Column::neuronModel(size_t neuron) const
{
    return cachedModel(neuron);
}

const Srm0Neuron &
Column::cachedModel(size_t neuron) const
{
    ModelSlot &slot = modelCache_.at(neuron);
    if (Srm0Neuron *hit = slot.ptr.load(std::memory_order_acquire))
        return *hit;

    const std::vector<double> &w = weights(neuron);
    std::vector<ResponseFunction> synapses;
    synapses.reserve(w.size());
    for (double x : w) {
        synapses.push_back(
            family_[quantizeWeight(x, params_.maxWeight)]);
    }
    auto fresh = std::make_unique<Srm0Neuron>(std::move(synapses),
                                              params_.threshold);

    // Concurrent readers may race to build the same slot; the CAS
    // picks one winner and the losers discard their copy. The build
    // is a pure function of the (unchanging, single-writer) weights,
    // so every candidate is equivalent.
    Srm0Neuron *expected = nullptr;
    if (slot.ptr.compare_exchange_strong(expected, fresh.get(),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        return *fresh.release();
    }
    return *expected;
}

void
Column::invalidateModel(size_t neuron)
{
    delete modelCache_.at(neuron).ptr.exchange(
        nullptr, std::memory_order_acq_rel);
}

std::vector<Time>
Column::rawFireTimes(std::span<const Time> inputs) const
{
    std::vector<Time> out;
    rawFireTimesInto(inputs, out);
    return out;
}

void
Column::rawFireTimesInto(std::span<const Time> inputs,
                         std::vector<Time> &out) const
{
    if (inputs.size() != params_.numInputs)
        throw std::invalid_argument("Column: arity mismatch");
    out.resize(params_.numNeurons);
    // Synapse-path fault hook: with synDelayJitter configured, neuron
    // j sees input k delayed by a fixed extra amount drawn per
    // (column seed, j, k) — a mis-sized dendritic delay line, constant
    // for the injector's lifetime. The draws are pure hashes, so the
    // perturbation is identical at any thread count and input shift.
    const fault::FaultInjector *inj = fault::activeInjector();
    if (inj != nullptr && inj->spec().synDelayJitter == 0)
        inj = nullptr;
    auto fireOne = [&](size_t j) {
        if (inj == nullptr)
            return cachedModel(j).fire(inputs);
        static thread_local std::vector<Time> delayed;
        delayed.resize(inputs.size());
        for (size_t k = 0; k < inputs.size(); ++k)
            delayed[k] =
                inputs[k] + inj->synapseDelay(params_.seed, j, k);
        return cachedModel(j).fire(delayed);
    };
    if (params_.numNeurons >= kParallelNeuronThreshold) {
        // Each neuron writes only its own slot, so the result is
        // bit-identical to the serial loop for any thread count.
        ThreadPool::shared().parallelFor(
            0, params_.numNeurons, kNeuronGrain, [&](size_t j) {
                out[j] = fireOne(j);
            });
    } else {
        for (size_t j = 0; j < params_.numNeurons; ++j)
            out[j] = fireOne(j);
    }
}

Volley
Column::process(std::span<const Time> inputs) const
{
    Volley out;
    processInto(inputs, out);
    return out;
}

void
Column::processInto(std::span<const Time> inputs, Volley &out) const
{
    rawFireTimesInto(inputs, out);
    if (params_.wtaTau > 0)
        applyWtaInPlace(out, params_.wtaTau);
    if (params_.wtaK > 0)
        applyKWtaInPlace(out, params_.wtaK);
    // Post-inhibition spike economics — the quantity the paper's
    // Fig. 16 energy argument counts. One O(neurons) scan per volley.
    ST_OBS_ONLY({
        uint64_t spikes = 0;
        for (const Time &t : out)
            spikes += t.isFinite();
        ST_OBS_ADD("tnn.spikes", spikes);
        ST_OBS_HIST("tnn.spikes_per_volley", spikes);
    })
}

std::optional<TrainEvent>
Column::selectWinner(std::span<const Time> inputs,
                     size_t least_wins) const
{
    std::vector<Time> fired = rawFireTimes(inputs);

    // Winner: earliest spike; simultaneous spikes go to the neuron
    // with the highest potential at the firing time (the tie rule of
    // Kheradpisheh et al. — the best-matching neuron, not the lowest
    // index, claims the pattern).
    std::optional<TrainEvent> event;
    Time best_spike = INF;
    ResponseFunction::Amp best_potential = 0;
    for (size_t j = 0; j < fired.size(); ++j) {
        // Fatigue: neurons that have won far more often than the
        // laggard sit this round out, so the others get a chance to
        // specialize.
        if (params_.fatigue > 0 &&
            winCount_[j] > least_wins + params_.fatigue) {
            continue;
        }
        if (fired[j].isInf() || fired[j] > best_spike)
            continue;
        ResponseFunction::Amp potential =
            cachedModel(j).potentialAt(inputs, fired[j].value());
        if (fired[j] < best_spike || potential > best_potential) {
            best_spike = fired[j];
            event = TrainEvent{0, j, fired[j]};
            best_potential = potential;
        }
    }
    return event;
}

TrainResult
Column::trainStep(std::span<const Time> inputs, const StdpRule &rule)
{
    size_t least_wins = winCount_.empty() ? 0
                                          : *std::min_element(
                                                winCount_.begin(),
                                                winCount_.end());
    std::optional<TrainEvent> event = selectWinner(inputs, least_wins);
    TrainResult result;
    if (event) {
        result.winner = event->neuron;
        result.spikeTime = event->spike;
        ++winCount_[event->neuron];
        rule.update(weights_[event->neuron], inputs, event->spike);
        invalidateModel(event->neuron);
        ST_OBS_ADD("tnn.weight_updates", 1);
        ST_OBS_HIST("tnn.wta.winner", event->neuron);
    }
    return result;
}

size_t
Column::leastWins() const
{
    return winCount_.empty() ? 0
                             : *std::min_element(winCount_.begin(),
                                                 winCount_.end());
}

std::optional<TrainEvent>
Column::scanWinner(std::span<const Time> inputs, size_t least_wins) const
{
    return selectWinner(inputs, least_wins);
}

size_t
Column::applyTrainEvents(std::span<const std::optional<TrainEvent>> slots,
                         std::span<const Volley> inputs,
                         const StdpRule &rule)
{
    std::vector<TrainEvent> merged = mergeTrainEvents(slots);
    for (const TrainEvent &event : merged) {
        ++winCount_[event.neuron];
        rule.update(weights_[event.neuron], inputs[event.sample],
                    event.spike);
        invalidateModel(event.neuron);
        ST_OBS_HIST("tnn.wta.winner", event.neuron);
    }
    ST_OBS_ADD("tnn.weight_updates", merged.size());
    return merged.size();
}

size_t
Column::trainBatch(std::span<const Volley> inputs, const StdpRule &rule,
                   size_t nthreads)
{
    ST_TRACE_SPAN("tnn.train_batch");
    ST_OBS_ADD("tnn.train_samples", inputs.size());
    // Phase 1 (parallel, read-only): pick every sample's winner
    // against the batch-start weights and fatigue counters. The
    // model cache is shared and safe under concurrent readers.
    const size_t least_wins = leastWins();
    std::vector<std::optional<TrainEvent>> slots(inputs.size());
    size_t lanes = nthreads == 0 ? ThreadPool::defaultThreads()
                                 : nthreads;
    ThreadPool::shared().parallelFor(
        0, inputs.size(), 1,
        [&](size_t s) {
            slots[s] = selectWinner(inputs[s], least_wins);
            if (slots[s])
                slots[s]->sample = s;
        },
        lanes);

    // Phase 2 (serial, deterministic): merge the per-sample events in
    // sample order — the order, and hence the resulting weights, are
    // independent of the thread count.
    return applyTrainEvents(slots, inputs, rule);
}

size_t
Column::winCount(size_t neuron) const
{
    return winCount_.at(neuron);
}

void
Column::resetFatigue()
{
    winCount_.assign(params_.numNeurons, 0);
}

const std::vector<double> &
Column::weights(size_t neuron) const
{
    return weights_.at(neuron);
}

void
Column::setWeights(size_t neuron, std::vector<double> w)
{
    if (w.size() != params_.numInputs)
        throw std::invalid_argument("Column: weight arity mismatch");
    weights_.at(neuron) = std::move(w);
    invalidateModel(neuron);
}

std::vector<size_t>
Column::discreteWeights(size_t neuron) const
{
    return quantizeWeights(weights(neuron), params_.maxWeight);
}

} // namespace st
