#include "tnn/layer.hpp"

#include <algorithm>
#include <stdexcept>

#include "neuron/wta.hpp"

namespace st {

namespace {

std::vector<ResponseFunction>
buildFamily(const ColumnParams &p)
{
    std::vector<ResponseFunction> family;
    family.reserve(p.maxWeight + 1);
    family.emplace_back();
    for (size_t w = 1; w <= p.maxWeight; ++w) {
        auto amp = static_cast<ResponseFunction::Amp>(w);
        switch (p.shape) {
          case ResponseShape::Step:
            family.push_back(ResponseFunction::step(amp));
            break;
          case ResponseShape::Biexponential:
            family.push_back(ResponseFunction::biexponential(
                amp, p.tauSlow, p.tauFast));
            break;
          case ResponseShape::PiecewiseLinear:
            family.push_back(
                ResponseFunction::piecewiseLinear(amp, p.rise, p.fall));
            break;
        }
    }
    return family;
}

} // namespace

Column::Column(const ColumnParams &params)
    : params_(params), family_(buildFamily(params))
{
    if (params_.numInputs == 0 || params_.numNeurons == 0)
        throw std::invalid_argument("Column: needs inputs and neurons");
    if (params_.threshold < 1)
        throw std::invalid_argument("Column: threshold must be >= 1");

    winCount_.assign(params_.numNeurons, 0);
    modelCache_.resize(params_.numNeurons);
    Rng rng(params_.seed);
    weights_.resize(params_.numNeurons);
    for (auto &w : weights_) {
        w.resize(params_.numInputs);
        for (double &x : w) {
            x = params_.initWeight +
                params_.initJitter * (2.0 * rng.uniform() - 1.0);
            x = std::clamp(x, 0.0, 1.0);
        }
    }
}

Column::Column(const Column &other)
    : params_(other.params_), family_(other.family_),
      weights_(other.weights_), winCount_(other.winCount_),
      modelCache_(other.params_.numNeurons)
{
}

Column &
Column::operator=(const Column &other)
{
    if (this != &other) {
        params_ = other.params_;
        family_ = other.family_;
        weights_ = other.weights_;
        winCount_ = other.winCount_;
        modelCache_.clear();
        modelCache_.resize(params_.numNeurons);
    }
    return *this;
}

Srm0Neuron
Column::neuronModel(size_t neuron) const
{
    return cachedModel(neuron);
}

const Srm0Neuron &
Column::cachedModel(size_t neuron) const
{
    auto &slot = modelCache_.at(neuron);
    if (!slot) {
        const std::vector<double> &w = weights(neuron);
        std::vector<ResponseFunction> synapses;
        synapses.reserve(w.size());
        for (double x : w) {
            synapses.push_back(
                family_[quantizeWeight(x, params_.maxWeight)]);
        }
        slot = std::make_unique<Srm0Neuron>(std::move(synapses),
                                            params_.threshold);
    }
    return *slot;
}

void
Column::invalidateModel(size_t neuron)
{
    modelCache_.at(neuron).reset();
}

std::vector<Time>
Column::rawFireTimes(std::span<const Time> inputs) const
{
    if (inputs.size() != params_.numInputs)
        throw std::invalid_argument("Column: arity mismatch");
    std::vector<Time> out;
    out.reserve(params_.numNeurons);
    for (size_t j = 0; j < params_.numNeurons; ++j)
        out.push_back(cachedModel(j).fire(inputs));
    return out;
}

Volley
Column::process(std::span<const Time> inputs) const
{
    std::vector<Time> fired = rawFireTimes(inputs);
    if (params_.wtaTau > 0)
        fired = applyWta(fired, params_.wtaTau);
    if (params_.wtaK > 0)
        fired = applyKWta(fired, params_.wtaK);
    return fired;
}

TrainResult
Column::trainStep(std::span<const Time> inputs, const StdpRule &rule)
{
    std::vector<Time> fired = rawFireTimes(inputs);

    // Fatigue: neurons that have won far more often than the laggard
    // sit this round out, so the others get a chance to specialize.
    size_t least_wins = winCount_.empty() ? 0
                                          : *std::min_element(
                                                winCount_.begin(),
                                                winCount_.end());

    // Winner: earliest spike; simultaneous spikes go to the neuron
    // with the highest potential at the firing time (the tie rule of
    // Kheradpisheh et al. — the best-matching neuron, not the lowest
    // index, claims the pattern).
    TrainResult result;
    ResponseFunction::Amp best_potential = 0;
    for (size_t j = 0; j < fired.size(); ++j) {
        if (params_.fatigue > 0 &&
            winCount_[j] > least_wins + params_.fatigue) {
            continue;
        }
        if (fired[j].isInf() || fired[j] > result.spikeTime)
            continue;
        ResponseFunction::Amp potential =
            cachedModel(j).potentialAt(inputs, fired[j].value());
        if (fired[j] < result.spikeTime || potential > best_potential) {
            result.spikeTime = fired[j];
            result.winner = j;
            best_potential = potential;
        }
    }
    if (result.winner) {
        ++winCount_[*result.winner];
        rule.update(weights_[*result.winner], inputs, result.spikeTime);
        invalidateModel(*result.winner);
    }
    return result;
}

size_t
Column::winCount(size_t neuron) const
{
    return winCount_.at(neuron);
}

void
Column::resetFatigue()
{
    winCount_.assign(params_.numNeurons, 0);
}

const std::vector<double> &
Column::weights(size_t neuron) const
{
    return weights_.at(neuron);
}

void
Column::setWeights(size_t neuron, std::vector<double> w)
{
    if (w.size() != params_.numInputs)
        throw std::invalid_argument("Column: weight arity mismatch");
    weights_.at(neuron) = std::move(w);
    invalidateModel(neuron);
}

std::vector<size_t>
Column::discreteWeights(size_t neuron) const
{
    return quantizeWeights(weights(neuron), params_.maxWeight);
}

} // namespace st
