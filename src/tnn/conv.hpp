/**
 * @file
 * Convolutional (weight-shared) TNN layers with temporal pooling —
 * the hierarchical architecture of the TNN literature the paper surveys
 * (Sec. II.C: Kheradpisheh et al. [28][29], Masquelier & Thorpe [37]).
 *
 * A Conv1dLayer slides one shared-weight column of SRM0 feature neurons
 * across a 1-D sensor array. Because every s-t function is
 * shift-invariant in *time*, and weight sharing makes the bank
 * shift-invariant in *space*, a feature fires wherever (and whenever)
 * its motif appears. Temporal pooling then keeps each feature's
 * earliest spike across positions — the spiking analogue of max
 * pooling, since in latency coding earliest = strongest.
 *
 * Training is the literature's scheme: for each input, the globally
 * earliest (feature, position) spike wins and that feature's shared
 * weights update by STDP on its local window, with the same fatigue
 * mechanism Columns use.
 */

#ifndef ST_TNN_CONV_HPP
#define ST_TNN_CONV_HPP

#include <optional>

#include "tnn/layer.hpp"

namespace st {

/** Configuration of a 1-D convolutional TNN layer. */
struct Conv1dParams
{
    size_t inputWidth = 0;  //!< sensor lines
    size_t kernelSize = 0;  //!< receptive-field width
    size_t stride = 1;
    size_t numFeatures = 0; //!< shared-weight feature neurons
    /** Per-window column configuration (thresholds, weights, shape). */
    ResponseFunction::Amp threshold = 1;
    size_t maxWeight = 7;
    ResponseShape shape = ResponseShape::Step;
    double initWeight = 0.5;
    double initJitter = 0.2;
    size_t fatigue = 0;
    uint64_t seed = 0xc0a7;
};

/** Outcome of one convolutional training step. */
struct ConvTrainResult
{
    std::optional<size_t> feature; //!< winning feature, if any fired
    size_t position = 0;           //!< winning window index
    Time spikeTime = INF;
};

/**
 * A 1-D convolutional layer of spiking feature detectors.
 */
class Conv1dLayer
{
  public:
    explicit Conv1dLayer(const Conv1dParams &params);

    const Conv1dParams &params() const { return params_; }

    /** Number of window positions: (W - k) / stride + 1. */
    size_t numPositions() const { return numPositions_; }

    /** The local window of the input at position @p p. */
    Volley window(std::span<const Time> input, size_t p) const;

    /**
     * Full feature map: element f * numPositions() + p is feature f's
     * spike time at position p (no inhibition).
     */
    Volley featureMap(std::span<const Time> input) const;

    /**
     * Temporal pooling: one line per feature carrying its earliest
     * spike across all positions.
     */
    Volley pooled(std::span<const Time> input) const;

    /**
     * One unsupervised training step: the earliest (feature, position)
     * spike wins; the winning feature's shared weights update by
     * @p rule on that window.
     */
    ConvTrainResult trainStep(std::span<const Time> input,
                              const StdpRule &rule);

    /** The shared-weight column (one neuron per feature). */
    const Column &column() const { return column_; }

    /** Shared weights of one feature. */
    const std::vector<double> &weights(size_t feature) const;

    /** Overwrite one feature's shared weights. */
    void setWeights(size_t feature, std::vector<double> w);

    /** Training wins per feature (fatigue bookkeeping). */
    size_t winCount(size_t feature) const;

  private:
    static ColumnParams columnParamsFor(const Conv1dParams &p);

    Conv1dParams params_;
    size_t numPositions_;
    Column column_;
    std::vector<size_t> winCount_;
};

} // namespace st

#endif // ST_TNN_CONV_HPP
