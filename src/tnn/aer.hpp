/**
 * @file
 * Address-Event Representation (AER) streams (paper Sec. II.C, Fig. 4).
 *
 * AER is the sparse spike-transport convention used by neuromorphic
 * sensors (Deiss et al. [13]): instead of frames, a sensor emits a stream
 * of (timestamp, address) events. The Bichler-style freeway tracker
 * (Fig. 4) consumes AER input; this module converts event streams into
 * the per-window spike volleys a TNN column processes.
 */

#ifndef ST_TNN_AER_HPP
#define ST_TNN_AER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "fault/status.hpp"
#include "tnn/volley.hpp"

namespace st {

/** One address-event: sensor @p address fired at absolute @p time. */
struct AerEvent
{
    uint64_t time = 0;
    uint32_t address = 0;

    bool operator==(const AerEvent &other) const = default;
};

/**
 * A time-ordered AER event stream over a fixed address space.
 */
class AerStream
{
  public:
    /** Create a stream for @p num_addresses sensor lines. */
    explicit AerStream(uint32_t num_addresses);

    /** Append an event; times must be nondecreasing. */
    void push(uint64_t time, uint32_t address);

    /** Number of events. */
    size_t size() const { return events_.size(); }

    /** Address space width. */
    uint32_t numAddresses() const { return numAddresses_; }

    /** All events in time order. */
    const std::vector<AerEvent> &events() const { return events_; }

    /** Timestamp of the final event (0 if empty). */
    uint64_t endTime() const;

    /**
     * Cut the stream into fixed-width windows and build one volley per
     * window: within a window, each address's *first* event becomes a
     * spike at its window-relative time (the temporal-coding reading of
     * an AER burst); silent addresses read inf. Windows continue until
     * the last event is covered.
     */
    std::vector<Volley> sliceWindows(uint64_t window) const;

  private:
    uint32_t numAddresses_;
    std::vector<AerEvent> events_;
};

/**
 * Serialize a stream as text:
 *
 *     staer 1
 *     addresses <N>
 *     <time> <address>
 *     ...
 *
 * One event per line, in time order; '#' starts a comment.
 */
std::string aerToText(const AerStream &stream);

/**
 * Parse the staer text format without throwing: on success *out is
 * replaced with the parsed stream and Ok is returned; on malformed
 * input — bad header, non-numeric fields, out-of-range addresses,
 * out-of-order times — *out is untouched and the returned Status
 * carries the offending line number as its context ("line N").
 *
 * Accepts every newline convention a stream can arrive in: CRLF,
 * a missing final newline, and blank/comment-only trailing lines.
 * This is the parser the serving layer quarantines sessions with —
 * it must never crash or silently reorder, whatever the bytes.
 */
Status aerFromText(const std::string &text, AerStream *out);

/**
 * Throwing convenience wrapper: parse or throw std::invalid_argument
 * whose message carries the offending line number.
 */
AerStream aerFromText(const std::string &text);

} // namespace st

#endif // ST_TNN_AER_HPP
