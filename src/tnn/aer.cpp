#include "tnn/aer.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace st {

AerStream::AerStream(uint32_t num_addresses)
    : numAddresses_(num_addresses)
{
    if (num_addresses == 0)
        throw std::invalid_argument("AerStream: empty address space");
}

void
AerStream::push(uint64_t time, uint32_t address)
{
    if (address >= numAddresses_)
        throw std::out_of_range("AerStream: address out of range");
    if (!events_.empty() && time < events_.back().time)
        throw std::invalid_argument("AerStream: events must be in time "
                                    "order");
    events_.push_back({time, address});
}

uint64_t
AerStream::endTime() const
{
    return events_.empty() ? 0 : events_.back().time;
}

std::vector<Volley>
AerStream::sliceWindows(uint64_t window) const
{
    if (window == 0)
        throw std::invalid_argument("AerStream: window must be >= 1");
    std::vector<Volley> out;
    if (events_.empty())
        return out;

    size_t next = 0;
    for (uint64_t start = 0; start <= endTime(); start += window) {
        Volley v(numAddresses_, INF);
        while (next < events_.size() &&
               events_[next].time < start + window) {
            const AerEvent &e = events_[next++];
            if (v[e.address].isInf())
                v[e.address] = Time(e.time - start);
        }
        out.push_back(std::move(v));
    }
    return out;
}

namespace {

[[noreturn]] void
fail(size_t line_no, const std::string &what)
{
    throw std::invalid_argument("aerFromText: line " +
                                std::to_string(line_no) + ": " + what);
}

/** Strict unsigned parse: all digits, in range — or fail with @p what. */
uint64_t
parseUint(const std::string &tok, size_t line_no, const char *what)
{
    if (tok.empty() ||
        tok.find_first_not_of("0123456789") != std::string::npos)
        fail(line_no, std::string("bad ") + what + " '" + tok + "'");
    try {
        return std::stoull(tok);
    } catch (const std::exception &) {
        fail(line_no,
             std::string(what) + " out of range '" + tok + "'");
    }
}

} // namespace

std::string
aerToText(const AerStream &stream)
{
    std::ostringstream os;
    os << "staer 1\n";
    os << "addresses " << stream.numAddresses() << "\n";
    for (const AerEvent &e : stream.events())
        os << e.time << ' ' << e.address << '\n';
    return os.str();
}

AerStream
aerFromText(const std::string &text)
{
    std::istringstream lines(text);
    std::string line;
    size_t line_no = 0;

    auto next_meaningful = [&](std::vector<std::string> &toks) {
        toks.clear();
        while (std::getline(lines, line)) {
            ++line_no;
            auto hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            std::istringstream fields(line);
            std::string tok;
            while (fields >> tok)
                toks.push_back(tok);
            if (!toks.empty())
                return true;
        }
        return false;
    };

    std::vector<std::string> toks;
    if (!next_meaningful(toks) || toks.size() != 2 ||
        toks[0] != "staer" || toks[1] != "1") {
        fail(line_no, "expected header 'staer 1'");
    }
    if (!next_meaningful(toks) || toks.size() != 2 ||
        toks[0] != "addresses") {
        fail(line_no, "expected 'addresses <count>'");
    }
    const uint64_t addresses =
        parseUint(toks[1], line_no, "address count");
    if (addresses == 0 ||
        addresses > std::numeric_limits<uint32_t>::max())
        fail(line_no, "address count must be in [1, 2^32)");

    AerStream stream(static_cast<uint32_t>(addresses));
    while (next_meaningful(toks)) {
        if (toks.size() != 2)
            fail(line_no, "expected '<time> <address>'");
        const uint64_t time = parseUint(toks[0], line_no, "time");
        const uint64_t address =
            parseUint(toks[1], line_no, "address");
        if (address >= addresses)
            fail(line_no, "address " + std::to_string(address) +
                              " out of range (have " +
                              std::to_string(addresses) + ")");
        if (!stream.events().empty() &&
            time < stream.events().back().time)
            fail(line_no, "events must be in time order");
        stream.push(time, static_cast<uint32_t>(address));
    }
    return stream;
}

} // namespace st
