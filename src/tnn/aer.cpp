#include "tnn/aer.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace st {

AerStream::AerStream(uint32_t num_addresses)
    : numAddresses_(num_addresses)
{
    if (num_addresses == 0)
        throw std::invalid_argument("AerStream: empty address space");
}

void
AerStream::push(uint64_t time, uint32_t address)
{
    if (address >= numAddresses_)
        throw std::out_of_range("AerStream: address out of range");
    if (!events_.empty() && time < events_.back().time)
        throw std::invalid_argument("AerStream: events must be in time "
                                    "order");
    events_.push_back({time, address});
}

uint64_t
AerStream::endTime() const
{
    return events_.empty() ? 0 : events_.back().time;
}

std::vector<Volley>
AerStream::sliceWindows(uint64_t window) const
{
    if (window == 0)
        throw std::invalid_argument("AerStream: window must be >= 1");
    constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

    std::vector<Volley> out;
    if (events_.empty())
        return out;

    // Walk windows [start, end) until every event is consumed. The
    // window arithmetic saturates: with timestamps near 2^64-1 a naive
    // `start += window` loop never terminates (start wraps past the
    // end time), so the final window is [start, 2^64-1] *inclusive*.
    size_t next = 0;
    uint64_t start = 0;
    while (next < events_.size()) {
        const bool last = window > kMax - start;
        const uint64_t end = last ? kMax : start + window;
        Volley v(numAddresses_, INF);
        while (next < events_.size() &&
               (last || events_[next].time < end)) {
            const AerEvent &e = events_[next++];
            if (v[e.address].isInf()) {
                uint64_t rel = e.time - start;
                // 2^64-1 is Time's inf pattern; a real event must not
                // alias "no spike", so clamp to the largest finite
                // time (only reachable in the saturated last window).
                if (rel == kMax)
                    rel = kMax - 1;
                v[e.address] = Time(rel);
            }
        }
        out.push_back(std::move(v));
        start = end;
    }
    return out;
}

namespace {

/** Non-throwing parse failure: code + message + "line N" context. */
Status
aerStatus(size_t line_no, std::string what,
          StatusCode code = StatusCode::InvalidArgument)
{
    return Status(code, std::move(what),
                  "line " + std::to_string(line_no));
}

} // namespace

std::string
aerToText(const AerStream &stream)
{
    std::ostringstream os;
    os << "staer 1\n";
    os << "addresses " << stream.numAddresses() << "\n";
    for (const AerEvent &e : stream.events())
        os << e.time << ' ' << e.address << '\n';
    return os.str();
}

Status
aerFromText(const std::string &text, AerStream *out)
{
    std::istringstream lines(text);
    std::string line;
    size_t line_no = 0;

    auto next_meaningful = [&](std::vector<std::string> &toks) {
        toks.clear();
        while (std::getline(lines, line)) {
            ++line_no;
            // Tolerate CRLF transports: the '\r' is framing, not data.
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            auto hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            std::istringstream fields(line);
            std::string tok;
            while (fields >> tok)
                toks.push_back(tok);
            if (!toks.empty())
                return true;
        }
        return false;
    };

    std::vector<std::string> toks;
    if (!next_meaningful(toks) || toks.size() != 2 ||
        toks[0] != "staer" || toks[1] != "1")
        return aerStatus(line_no, "expected header 'staer 1'");
    if (!next_meaningful(toks) || toks.size() != 2 ||
        toks[0] != "addresses")
        return aerStatus(line_no, "expected 'addresses <count>'");

    const std::optional<uint64_t> addresses =
        parseUint64Strict(toks[1]);
    if (!addresses)
        return aerStatus(line_no,
                         "bad address count '" + toks[1] + "'");
    if (*addresses == 0 ||
        *addresses > std::numeric_limits<uint32_t>::max())
        return aerStatus(line_no, "address count must be in [1, 2^32)",
                         StatusCode::OutOfRange);

    AerStream stream(static_cast<uint32_t>(*addresses));
    while (next_meaningful(toks)) {
        if (toks.size() != 2)
            return aerStatus(line_no, "expected '<time> <address>'");
        const std::optional<uint64_t> time =
            parseUint64Strict(toks[0]);
        if (!time)
            return aerStatus(line_no, "bad time '" + toks[0] + "'");
        const std::optional<uint64_t> address =
            parseUint64Strict(toks[1]);
        if (!address)
            return aerStatus(line_no,
                             "bad address '" + toks[1] + "'");
        if (*address >= *addresses)
            return aerStatus(line_no,
                             "address " + std::to_string(*address) +
                                 " out of range (have " +
                                 std::to_string(*addresses) + ")",
                             StatusCode::OutOfRange);
        if (!stream.events().empty() &&
            *time < stream.events().back().time)
            return aerStatus(line_no, "events must be in time order");
        stream.push(*time, static_cast<uint32_t>(*address));
    }
    *out = std::move(stream);
    return Status::ok();
}

AerStream
aerFromText(const std::string &text)
{
    AerStream stream(1);
    const Status status = aerFromText(text, &stream);
    if (!status.isOk())
        throw std::invalid_argument("aerFromText: " +
                                    status.toString());
    return stream;
}

} // namespace st
