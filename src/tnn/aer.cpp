#include "tnn/aer.hpp"

#include <stdexcept>

namespace st {

AerStream::AerStream(uint32_t num_addresses)
    : numAddresses_(num_addresses)
{
    if (num_addresses == 0)
        throw std::invalid_argument("AerStream: empty address space");
}

void
AerStream::push(uint64_t time, uint32_t address)
{
    if (address >= numAddresses_)
        throw std::out_of_range("AerStream: address out of range");
    if (!events_.empty() && time < events_.back().time)
        throw std::invalid_argument("AerStream: events must be in time "
                                    "order");
    events_.push_back({time, address});
}

uint64_t
AerStream::endTime() const
{
    return events_.empty() ? 0 : events_.back().time;
}

std::vector<Volley>
AerStream::sliceWindows(uint64_t window) const
{
    if (window == 0)
        throw std::invalid_argument("AerStream: window must be >= 1");
    std::vector<Volley> out;
    if (events_.empty())
        return out;

    size_t next = 0;
    for (uint64_t start = 0; start <= endTime(); start += window) {
        Volley v(numAddresses_, INF);
        while (next < events_.size() &&
               events_[next].time < start + window) {
            const AerEvent &e = events_[next++];
            if (v[e.address].isInf())
                v[e.address] = Time(e.time - start);
        }
        out.push_back(std::move(v));
    }
    return out;
}

} // namespace st
