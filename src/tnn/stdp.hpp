/**
 * @file
 * Spike Timing Dependent Plasticity rules (paper Sec. II.A and IV.B).
 *
 * STDP is the paper's biologically plausible, strictly local training
 * mechanism: an input spike preceding the neuron's output spike gets its
 * synapse strengthened; one arriving after (or not at all) gets weakened.
 * Two standard rules are provided:
 *
 *  - SimplifiedStdp: the multiplicative rule of Masquelier/Thorpe [37]
 *    and Kheradpisheh et al. [28], dw = a+ * w(1-w) on potentiation and
 *    dw = -a- * w(1-w) on depression. Timing-independent within the
 *    window, soft-bounded to (0, 1), and the workhorse of the surveyed
 *    TNN architectures.
 *
 *  - ClassicStdp: the exponential pairwise rule (Bi & Poo [4],
 *    Morrison et al. [38]): dw = a+ * exp(-dt/tau+) / -a- * exp(-dt/tau-)
 *    additively, clamped to [0, 1].
 *
 * Weights live in [0, 1] during training and are quantized onto the
 * low-resolution discrete range (e.g., 3-4 bits, per Pfeil et al. [43])
 * when programmed into micro-weight hardware.
 */

#ifndef ST_TNN_STDP_HPP
#define ST_TNN_STDP_HPP

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/time.hpp"

namespace st {

/** Interface for local synaptic update rules. */
class StdpRule
{
  public:
    virtual ~StdpRule() = default;

    /**
     * Update one neuron's weights after it fired.
     *
     * @param weights  In/out weights in [0, 1], one per input line.
     * @param inputs   The input volley the neuron saw.
     * @param out      The neuron's output spike time (finite).
     */
    virtual void update(std::span<double> weights,
                        std::span<const Time> inputs, Time out) const = 0;
};

/** Masquelier/Kheradpisheh multiplicative simplified STDP. */
class SimplifiedStdp : public StdpRule
{
  public:
    /**
     * @param a_plus   Potentiation rate (e.g., 0.05).
     * @param a_minus  Depression rate (e.g., 0.04).
     */
    SimplifiedStdp(double a_plus, double a_minus);

    void update(std::span<double> weights, std::span<const Time> inputs,
                Time out) const override;

  private:
    double aPlus_, aMinus_;
};

/** Exponential-window pairwise additive STDP. */
class ClassicStdp : public StdpRule
{
  public:
    /**
     * @param a_plus    Potentiation amplitude.
     * @param a_minus   Depression amplitude.
     * @param tau_plus  Potentiation time constant (time units).
     * @param tau_minus Depression time constant.
     */
    ClassicStdp(double a_plus, double a_minus, double tau_plus,
                double tau_minus);

    void update(std::span<double> weights, std::span<const Time> inputs,
                Time out) const override;

  private:
    double aPlus_, aMinus_, tauPlus_, tauMinus_;
};

/**
 * One winner selection from a batched STDP pass: sample @p sample made
 * neuron @p neuron fire first at time @p spike. Batched training
 * (Column::trainBatch) computes these in parallel against the
 * batch-start weights, then merges them — see mergeTrainEvents().
 */
struct TrainEvent
{
    size_t sample = 0; //!< index of the volley within the batch
    size_t neuron = 0; //!< winning neuron
    Time spike = INF;  //!< the winner's spike time
};

/**
 * Deterministic merge of a batch's per-sample winner slots: drop the
 * empty slots and return the surviving events ordered by sample index.
 * The slot array is indexed by sample, so the result — and therefore
 * the order in which weight updates are applied — is independent of
 * how many threads filled it (the shard-merge step of the parallel
 * STDP engine).
 */
std::vector<TrainEvent>
mergeTrainEvents(std::span<const std::optional<TrainEvent>> slots);

/**
 * Quantize a real weight in [0, 1] onto the discrete range 0..max_weight
 * (the micro-weight setting for a trained synapse).
 */
size_t quantizeWeight(double w, size_t max_weight);

/** Quantize a whole weight vector. */
std::vector<size_t> quantizeWeights(std::span<const double> w,
                                    size_t max_weight);

} // namespace st

#endif // ST_TNN_STDP_HPP
