/**
 * @file
 * Spike volleys and temporal value coding (paper Sec. III.A, Fig. 5).
 *
 * A volley is a vector of spike times, one per line, encoding a vector of
 * small values as times relative to the first spike; inf means no spike.
 * With n-bit temporal resolution a volley communicates slightly under n
 * bits per spike, but transmission time grows as 2^n — the reason the
 * paper argues for very low resolution (3-4 bits) data. codingStats()
 * quantifies exactly that trade-off for bench_fig05.
 */

#ifndef ST_TNN_VOLLEY_HPP
#define ST_TNN_VOLLEY_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/algebra.hpp"
#include "core/time.hpp"

namespace st {

/** A spike volley: one (possibly absent) spike time per line. */
using Volley = std::vector<Time>;

/**
 * Encode a value vector as a normalized volley: value v becomes a spike
 * at relative time v; nullopt becomes no spike. The result is shifted so
 * the earliest spike is at 0 (if any value is present, the minimum is
 * subtracted — Fig. 5's "first spike encodes the value 0").
 */
Volley encodeValues(std::span<const std::optional<uint64_t>> values);

/** Convenience overload for dense value vectors (no missing entries). */
Volley encodeValues(std::span<const uint64_t> values);

/**
 * Decode a volley back into values relative to its first spike
 * (the inverse of encodeValues up to the lost absolute offset).
 */
std::vector<std::optional<uint64_t>> decodeValues(std::span<const Time> v);

/**
 * Quantize analog intensities in [0, 1] onto an n-bit temporal code:
 * strong inputs spike early (the latency coding of Sec. II.C). Values
 * strictly below @p cutoff (after clamping to [0, 1]) produce no spike
 * (sparse coding).
 */
Volley quantizeIntensities(std::span<const double> intensities,
                           unsigned resolution_bits, double cutoff = 0.0);

/** Spike-coding efficiency figures for Sec. III.A's argument. */
struct CodingStats
{
    size_t lines = 0;          //!< volley width
    size_t spikes = 0;         //!< spikes actually transmitted
    unsigned resolutionBits = 0; //!< n
    uint64_t messageTime = 0;  //!< time units to transmit (2^n)
    double bitsConveyed = 0;   //!< information upper bound (lines * n)
    double bitsPerSpike = 0;   //!< bitsConveyed / spikes
};

/** Compute coding statistics for a volley at a given resolution. */
CodingStats codingStats(std::span<const Time> volley,
                        unsigned resolution_bits);

/** True iff the volley is normalized (earliest spike at 0) or empty. */
bool isNormalizedVolley(std::span<const Time> v);

} // namespace st

#endif // ST_TNN_VOLLEY_HPP
