/**
 * @file
 * Multi-layer temporal neural networks (paper Sec. II.C).
 *
 * A TnnNetwork stacks Columns: each layer's (inhibited) output volley is
 * the next layer's input volley — the hierarchical arrangement of
 * Kheradpisheh et al. [28][29] and Fig. 4. Training is greedy and
 * layer-local, as in the surveyed architectures: earlier layers are
 * frozen while a layer trains on the volleys they produce.
 */

#ifndef ST_TNN_TNN_NETWORK_HPP
#define ST_TNN_TNN_NETWORK_HPP

#include <vector>

#include "tnn/layer.hpp"

namespace st {

/** A feedforward stack of TNN columns. */
class TnnNetwork
{
  public:
    TnnNetwork() = default;

    /**
     * Append a layer. Its numInputs must equal the previous layer's
     * numNeurons (or be the network input width for the first layer).
     */
    void addLayer(const ColumnParams &params);

    /** Append a pre-built Column (e.g. the deserialization path). */
    void addLayer(Column column);

    /** Number of layers. */
    size_t numLayers() const { return layers_.size(); }

    /** Access a layer. */
    Column &layer(size_t i) { return layers_.at(i); }
    const Column &layer(size_t i) const { return layers_.at(i); }

    /** Forward an input volley through every layer. */
    Volley process(const Volley &input) const;

    /** Forward through layers [0, upto) only. */
    Volley processUpTo(const Volley &input, size_t upto) const;

    /**
     * Forward a whole batch of volleys, fanning them out across up to
     * @p nthreads lanes of the shared pool (0 = ST_NUM_THREADS or the
     * hardware concurrency, 1 = plain serial loop). Volleys are
     * independent, so out[i] == process(inputs[i]) bit-for-bit
     * regardless of the thread count.
     *
     * Under an active fault::InjectionScope, volley i's draws are keyed
     * by stream id i — the batch output is still bit-identical at any
     * thread count, but only out[0] matches the serial process() call,
     * which runs as stream 0.
     */
    std::vector<Volley> processBatch(std::span<const Volley> inputs,
                                     size_t nthreads = 0) const;

    /** processBatch() through layers [0, upto) only. */
    std::vector<Volley> processBatchUpTo(std::span<const Volley> inputs,
                                         size_t upto,
                                         size_t nthreads = 0) const;

    /**
     * Greedy layer training: freeze layers below @p layer_index, run
     * @p epochs passes over @p data, one trainStep per volley.
     *
     * @return Number of training steps in which some neuron fired.
     */
    size_t trainLayer(size_t layer_index,
                      std::span<const Volley> data,
                      const StdpRule &rule, size_t epochs = 1);

    /**
     * Parallel mini-batch variant of trainLayer(): each epoch forwards
     * the whole dataset through the frozen lower layers with
     * processBatchUpTo() and applies one Column::trainBatch() to the
     * training layer. Winner selection inside an epoch uses the
     * epoch-start weights (mini-batch semantics), and the serial merge
     * makes the trained weights bit-identical for every thread count.
     *
     * @return Number of training steps in which some neuron fired.
     */
    size_t trainLayerBatched(size_t layer_index,
                             std::span<const Volley> data,
                             const StdpRule &rule, size_t epochs = 1,
                             size_t nthreads = 0);

  private:
    std::vector<Column> layers_;
};

} // namespace st

#endif // ST_TNN_TNN_NETWORK_HPP
