#include "model/stmf.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "model/crc32c.hpp"

namespace st::model {

// The on-disk format is little-endian and the fixed-width reads below
// are plain memcpy: every target this repo builds for (x86-64,
// aarch64) is little-endian, and a big-endian port would need byte
// swaps here and in the typed-array views.
static_assert(std::endian::native == std::endian::little,
              "STMF readers assume a little-endian host");

namespace {

/** "STMF" + CRLF/EOF guards, catching text-mode transfer mangling. */
constexpr uint8_t kMagic[8] = {'S', 'T', 'M', 'F',
                               '\r', '\n', 0x1a, '\n'};

constexpr size_t kHeaderBytes = 64;
constexpr size_t kEntryBytes = 32;

/** Header field offsets (absolute). */
constexpr size_t kOffVersion = 8;
constexpr size_t kOffSectionCount = 12;
constexpr size_t kOffFileSize = 16;
constexpr size_t kOffFileCrc = 24;
constexpr size_t kOffHeaderCrc = 28;

uint32_t
loadU32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

uint64_t
loadU64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

void
storeU32(std::vector<uint8_t> &buf, size_t at, uint32_t v)
{
    std::memcpy(buf.data() + at, &v, sizeof(v));
}

void
storeU64(std::vector<uint8_t> &buf, size_t at, uint64_t v)
{
    std::memcpy(buf.data() + at, &v, sizeof(v));
}

std::string
offsetContext(uint64_t offset)
{
    return "offset " + std::to_string(offset);
}

std::string
offsetContext(uint64_t offset, const std::string &section)
{
    return "offset " + std::to_string(offset) + ", section " + section;
}

Status
errnoStatus(StatusCode code, const std::string &what,
            const std::string &path)
{
    return Status(code, what + ": " + std::strerror(errno), path);
}

/** Owning backing for the Copy/parse paths. */
struct VectorBacking
{
    std::vector<uint8_t> bytes;
};

/** Owning backing for the Mmap path; unmaps on release. */
struct MmapBacking
{
    const uint8_t *addr = nullptr;
    size_t length = 0;

    ~MmapBacking()
    {
        if (addr != nullptr)
            ::munmap(const_cast<uint8_t *>(addr), length);
    }
};

} // namespace

std::string
sectionName(uint32_t type)
{
    switch (static_cast<SectionType>(type)) {
      case SectionType::Meta:
        return "meta";
      case SectionType::Tnn:
        return "tnn";
      case SectionType::Plan:
        return "plan";
      case SectionType::Grl:
        return "grl";
      case SectionType::Lsm:
        return "lsm";
    }
    return "type " + std::to_string(type);
}

// ---------------------------------------------------------------------
// SectionReader / SectionWriter

Status
SectionReader::fail(StatusCode code, const std::string &message) const
{
    return failAt(pos_, code, message);
}

Status
SectionReader::failAt(size_t at, StatusCode code,
                      const std::string &message) const
{
    return Status(code, message, offsetContext(base_ + at, section_));
}

Status
SectionReader::need(size_t n, const char *what)
{
    if (remaining() < n)
        return fail(StatusCode::DataLoss,
                    std::string("truncated ") + what + " (need " +
                        std::to_string(n) + " bytes, have " +
                        std::to_string(remaining()) + ")");
    return Status::ok();
}

Status
SectionReader::u32(uint32_t &out)
{
    ST_RETURN_IF_ERROR(need(4, "u32"));
    out = loadU32(bytes_.data() + pos_);
    pos_ += 4;
    return Status::ok();
}

Status
SectionReader::u64(uint64_t &out)
{
    ST_RETURN_IF_ERROR(need(8, "u64"));
    out = loadU64(bytes_.data() + pos_);
    pos_ += 8;
    return Status::ok();
}

Status
SectionReader::f64(double &out)
{
    uint64_t bits;
    ST_RETURN_IF_ERROR(u64(bits));
    out = std::bit_cast<double>(bits);
    return Status::ok();
}

Status
SectionReader::align8()
{
    const size_t aligned = (pos_ + 7) & ~size_t{7};
    if (aligned > bytes_.size())
        return fail(StatusCode::DataLoss,
                    "truncated alignment padding");
    pos_ = aligned;
    return Status::ok();
}

Status
SectionReader::str(std::string &out, size_t max_len)
{
    uint32_t len;
    ST_RETURN_IF_ERROR(u32(len));
    if (len > max_len)
        return fail(StatusCode::InvalidArgument,
                    "string length " + std::to_string(len) +
                        " exceeds limit " + std::to_string(max_len));
    ST_RETURN_IF_ERROR(need(len, "string"));
    out.assign(reinterpret_cast<const char *>(bytes_.data() + pos_),
               len);
    pos_ += len;
    return Status::ok();
}

Status
SectionReader::expectEnd()
{
    // Alignment padding at the payload tail is legitimate (writers
    // 8-align arrays); any non-padding leftover means the decoder and
    // the file disagree about the layout.
    if (remaining() >= 8)
        return fail(StatusCode::InvalidArgument,
                    std::to_string(remaining()) +
                        " unexpected trailing bytes");
    return Status::ok();
}

void
SectionWriter::u32(uint32_t v)
{
    bytes(&v, sizeof(v));
}

void
SectionWriter::u64(uint64_t v)
{
    bytes(&v, sizeof(v));
}

void
SectionWriter::f64(double v)
{
    u64(std::bit_cast<uint64_t>(v));
}

void
SectionWriter::bytes(const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

void
SectionWriter::align8()
{
    buf_.resize((buf_.size() + 7) & ~size_t{7}, 0);
}

void
SectionWriter::str(std::string_view s)
{
    u32(static_cast<uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

// ---------------------------------------------------------------------
// StmfBuilder

void
StmfBuilder::addSection(SectionType type, std::vector<uint8_t> payload)
{
    sections_.push_back(
        {static_cast<uint32_t>(type), std::move(payload)});
}

std::vector<uint8_t>
StmfBuilder::serialize() const
{
    const size_t count = sections_.size();
    const size_t table_end = kHeaderBytes + count * kEntryBytes;
    size_t total = (table_end + 7) & ~size_t{7};
    std::vector<size_t> offsets(count);
    for (size_t i = 0; i < count; ++i) {
        offsets[i] = total;
        total += sections_[i].payload.size();
        total = (total + 7) & ~size_t{7};
    }

    std::vector<uint8_t> buf(total, 0);
    std::memcpy(buf.data(), kMagic, sizeof(kMagic));
    storeU32(buf, kOffVersion, kStmfVersion);
    storeU32(buf, kOffSectionCount, static_cast<uint32_t>(count));
    storeU64(buf, kOffFileSize, total);

    for (size_t i = 0; i < count; ++i) {
        const size_t entry = kHeaderBytes + i * kEntryBytes;
        const std::vector<uint8_t> &payload = sections_[i].payload;
        storeU32(buf, entry + 0, sections_[i].type);
        storeU64(buf, entry + 8, offsets[i]);
        storeU64(buf, entry + 16, payload.size());
        storeU32(buf, entry + 24,
                 crc32c(payload.data(), payload.size()));
        std::memcpy(buf.data() + offsets[i], payload.data(),
                    payload.size());
    }

    storeU32(buf, kOffFileCrc,
             crc32c(buf.data() + kHeaderBytes,
                    buf.size() - kHeaderBytes));
    // The header checksum covers the header with its own field zeroed
    // (it is zero right now — written last).
    storeU32(buf, kOffHeaderCrc, crc32c(buf.data(), kHeaderBytes));
    return buf;
}

Status
StmfBuilder::writeFile(const std::string &path) const
{
    const std::vector<uint8_t> image = serialize();
    const std::string tmp = path + ".tmp";

    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return errnoStatus(StatusCode::Internal, "open", tmp);

    const auto cleanup = [&](Status status) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return status;
    };

    size_t written = 0;
    while (written < image.size()) {
        const ssize_t n = ::write(fd, image.data() + written,
                                  image.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return cleanup(
                errnoStatus(StatusCode::Internal, "write", tmp));
        }
        written += static_cast<size_t>(n);
    }
    // Ordering is the whole point: payload durable before the rename
    // makes it visible, rename durable via the directory fsync. A
    // crash anywhere in between leaves either the old file or a
    // stray .tmp — never a torn published model.
    if (::fsync(fd) != 0)
        return cleanup(errnoStatus(StatusCode::Internal, "fsync", tmp));
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return errnoStatus(StatusCode::Internal, "close", tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const Status status =
            errnoStatus(StatusCode::Internal, "rename", path);
        ::unlink(tmp.c_str());
        return status;
    }

    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dirfd >= 0) {
        ::fsync(dirfd); // best-effort: the rename itself succeeded
        ::close(dirfd);
    }
    return Status::ok();
}

// ---------------------------------------------------------------------
// StmfFile

Status
StmfFile::validate(std::span<const uint8_t> bytes,
                   std::vector<Section> &sections, uint32_t &file_crc)
{
    if (bytes.size() < kHeaderBytes)
        return Status(StatusCode::DataLoss,
                      "file too small for an STMF header (" +
                          std::to_string(bytes.size()) + " bytes)",
                      offsetContext(0));
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return Status(StatusCode::InvalidArgument,
                      "bad magic (not an STMF file)",
                      offsetContext(0));
    const uint32_t version = loadU32(bytes.data() + kOffVersion);
    if (version != kStmfVersion)
        return Status(StatusCode::InvalidArgument,
                      "unsupported STMF version " +
                          std::to_string(version) + " (reader speaks " +
                          std::to_string(kStmfVersion) + ")",
                      offsetContext(kOffVersion));

    std::vector<uint8_t> header(bytes.begin(),
                                bytes.begin() + kHeaderBytes);
    const uint32_t header_crc = loadU32(header.data() + kOffHeaderCrc);
    storeU32(header, kOffHeaderCrc, 0);
    if (crc32c(header.data(), header.size()) != header_crc)
        return Status(StatusCode::DataLoss, "header checksum mismatch",
                      offsetContext(kOffHeaderCrc));

    const uint64_t file_size = loadU64(bytes.data() + kOffFileSize);
    if (file_size != bytes.size())
        return Status(StatusCode::DataLoss,
                      "header file size " + std::to_string(file_size) +
                          " != actual " + std::to_string(bytes.size()),
                      offsetContext(kOffFileSize));

    const uint32_t count = loadU32(bytes.data() + kOffSectionCount);
    const uint64_t table_end =
        kHeaderBytes + uint64_t{count} * kEntryBytes;
    if (table_end > bytes.size())
        return Status(StatusCode::OutOfRange,
                      "section table of " + std::to_string(count) +
                          " entries extends past end of file",
                      offsetContext(kOffSectionCount));

    sections.clear();
    sections.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        const size_t entry = kHeaderBytes + size_t{i} * kEntryBytes;
        Section s;
        s.type = loadU32(bytes.data() + entry);
        s.offset = loadU64(bytes.data() + entry + 8);
        s.length = loadU64(bytes.data() + entry + 16);
        s.crc = loadU32(bytes.data() + entry + 24);
        const std::string name = sectionName(s.type);
        if (s.offset % 8 != 0)
            return Status(StatusCode::InvalidArgument,
                          "misaligned section offset " +
                              std::to_string(s.offset),
                          offsetContext(entry + 8, name));
        if (s.offset < table_end)
            return Status(StatusCode::InvalidArgument,
                          "section overlaps header/table (offset " +
                              std::to_string(s.offset) + ")",
                          offsetContext(entry + 8, name));
        // Check the offset on its own first: if it lies past EOF the
        // unsigned subtraction below would wrap and wave the length
        // through.
        if (s.offset > bytes.size())
            return Status(StatusCode::OutOfRange,
                          "section offset " +
                              std::to_string(s.offset) +
                              " past end of file (" +
                              std::to_string(bytes.size()) +
                              " bytes)",
                          offsetContext(entry + 8, name));
        if (s.length > bytes.size() - s.offset)
            return Status(StatusCode::OutOfRange,
                          "section extends past end of file (offset " +
                              std::to_string(s.offset) + " + length " +
                              std::to_string(s.length) + " > " +
                              std::to_string(bytes.size()) + ")",
                          offsetContext(entry + 16, name));
        sections.push_back(s);
    }

    // Overlap scan: extents sorted by offset must be disjoint.
    std::vector<size_t> order(sections.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return sections[a].offset < sections[b].offset;
    });
    for (size_t k = 1; k < order.size(); ++k) {
        const Section &prev = sections[order[k - 1]];
        const Section &next = sections[order[k]];
        if (prev.offset + prev.length > next.offset)
            return Status(
                StatusCode::InvalidArgument,
                "section overlaps section " +
                    sectionName(prev.type) + " at offset " +
                    std::to_string(prev.offset),
                offsetContext(next.offset, sectionName(next.type)));
    }

    for (const Section &s : sections) {
        if (crc32c(bytes.data() + s.offset, s.length) != s.crc)
            return Status(StatusCode::DataLoss,
                          "section checksum mismatch",
                          offsetContext(s.offset,
                                        sectionName(s.type)));
    }

    file_crc = loadU32(bytes.data() + kOffFileCrc);
    if (crc32c(bytes.data() + kHeaderBytes,
               bytes.size() - kHeaderBytes) != file_crc)
        return Status(StatusCode::DataLoss, "file checksum mismatch",
                      offsetContext(kOffFileCrc));
    return Status::ok();
}

Status
StmfFile::open(const std::string &path, LoadMode mode, StmfFile &out)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return errnoStatus(errno == ENOENT ? StatusCode::NotFound
                                           : StatusCode::Internal,
                           "open", path);
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const Status status =
            errnoStatus(StatusCode::Internal, "fstat", path);
        ::close(fd);
        return status;
    }
    const size_t size = static_cast<size_t>(st.st_size);

    std::shared_ptr<const void> backing;
    std::span<const uint8_t> bytes;
    if (mode == LoadMode::Mmap && size > 0) {
        void *addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd,
                            0);
        if (addr == MAP_FAILED) {
            const Status status =
                errnoStatus(StatusCode::Internal, "mmap", path);
            ::close(fd);
            return status;
        }
        auto owner = std::make_shared<MmapBacking>();
        owner->addr = static_cast<const uint8_t *>(addr);
        owner->length = size;
        bytes = {owner->addr, owner->length};
        backing = std::move(owner);
        ::close(fd); // the mapping outlives the descriptor
    } else {
        auto owner = std::make_shared<VectorBacking>();
        owner->bytes.resize(size);
        size_t got = 0;
        while (got < size) {
            const ssize_t n =
                ::read(fd, owner->bytes.data() + got, size - got);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                const Status status =
                    errnoStatus(StatusCode::Internal, "read", path);
                ::close(fd);
                return status;
            }
            if (n == 0)
                break; // shrank underneath us; validate() reports it
            got += static_cast<size_t>(n);
        }
        ::close(fd);
        owner->bytes.resize(got);
        bytes = {owner->bytes.data(), owner->bytes.size()};
        backing = std::move(owner);
        mode = LoadMode::Copy;
    }

    std::vector<Section> sections;
    uint32_t file_crc = 0;
    ST_RETURN_IF_ERROR(validate(bytes, sections, file_crc));
    out.backing_ = std::move(backing);
    out.bytes_ = bytes;
    out.sections_ = std::move(sections);
    out.fileCrc_ = file_crc;
    out.mode_ = mode;
    return Status::ok();
}

Status
StmfFile::parse(std::vector<uint8_t> bytes, StmfFile &out)
{
    auto owner = std::make_shared<VectorBacking>();
    owner->bytes = std::move(bytes);
    const std::span<const uint8_t> view{owner->bytes.data(),
                                        owner->bytes.size()};
    std::vector<Section> sections;
    uint32_t file_crc = 0;
    ST_RETURN_IF_ERROR(validate(view, sections, file_crc));
    out.backing_ = std::move(owner);
    out.bytes_ = view;
    out.sections_ = std::move(sections);
    out.fileCrc_ = file_crc;
    out.mode_ = LoadMode::Copy;
    return Status::ok();
}

bool
StmfFile::hasSection(SectionType type) const
{
    for (const Section &s : sections_) {
        if (s.type == static_cast<uint32_t>(type))
            return true;
    }
    return false;
}

std::span<const uint8_t>
StmfFile::section(SectionType type) const
{
    for (const Section &s : sections_) {
        if (s.type == static_cast<uint32_t>(type))
            return bytes_.subspan(s.offset, s.length);
    }
    return {};
}

uint64_t
StmfFile::sectionOffset(SectionType type) const
{
    for (const Section &s : sections_) {
        if (s.type == static_cast<uint32_t>(type))
            return s.offset;
    }
    return 0;
}

} // namespace st::model
