/**
 * @file
 * STMF — the SpaceTime Model File container (DESIGN.md Sec. 14).
 *
 * A versioned little-endian binary container for *compiled* model
 * artifacts: the flat CSR instruction stream of `Network::compile()`,
 * TNN layer weights, GRL circuit netlists, LSM reservoir params. Text
 * formats (network_io, tnn_io) stay the interchange for figures and
 * training; STMF is the serving format, where startup must be an mmap
 * + fixup instead of a parse + recompile.
 *
 * Layout (all integers little-endian):
 *
 *   [0, 64)    FileHeader: magic "STMF\r\n\x1a\n", format version,
 *              section count, file size, whole-file CRC32C (over
 *              everything after the header), header CRC32C (over the
 *              header with this field zeroed).
 *   [64, ...)  Section table: one 32-byte entry per section — type,
 *              absolute offset (8-aligned), payload length, payload
 *              CRC32C.
 *   [...]      Section payloads, each 8-aligned, zero-padded between.
 *
 * Readers never trust a byte: every offset/length is bounds-checked
 * against the actual file size, section extents must not overlap the
 * header, the table, or each other, alignment is enforced before any
 * typed view is formed, and all three checksum layers are verified
 * before a payload becomes visible. Every rejection is an `st::Status`
 * carrying the byte offset + section name ("offset 96, section plan"),
 * never an exception and never a crash — the PR 5 loader-hardening bar
 * applied to binary input.
 *
 * Writing is crash-safe: the container is serialized to a sibling
 * temporary, fsync'd, renamed over the destination, and the directory
 * fsync'd, so a torn file can never appear under the published name.
 */

#ifndef ST_MODEL_STMF_HPP
#define ST_MODEL_STMF_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "fault/status.hpp"

namespace st::model {

/** Current STMF format version (bumped on incompatible layout). */
inline constexpr uint32_t kStmfVersion = 1;

/** Section payload kinds. Unknown types are checksummed but ignored. */
enum class SectionType : uint32_t
{
    Meta = 1, //!< model identity: kind, id, version, input width
    Tnn = 2,  //!< TnnNetwork: per-layer ColumnParams + weights
    Plan = 3, //!< compiled EvalProgram (live stream) + config values
    Grl = 4,  //!< GRL circuit: gate table + fanin CSR + outputs
    Lsm = 5,  //!< LSM anomaly model: ReservoirParams + scoring knobs
};

/** Printable section name ("meta", "tnn", ...; "section <n>" else). */
std::string sectionName(uint32_t type);

/** How StmfFile::open backs the payload bytes. */
enum class LoadMode : uint8_t
{
    Mmap, //!< map the file read-only; sections view the mapping
    Copy, //!< read the file into an owned buffer (portable fallback)
};

/**
 * Accumulates sections and serializes/publishes the container.
 * Sections are written in addSection() order.
 */
class StmfBuilder
{
  public:
    /** Append one section payload (moved in). */
    void addSection(SectionType type, std::vector<uint8_t> payload);

    /** Serialize header + table + payloads into one buffer. */
    std::vector<uint8_t> serialize() const;

    /**
     * Atomic publish: serialize to "<path>.tmp", fsync, rename over
     * @p path, fsync the directory. On any failure the destination is
     * untouched and the temporary is removed.
     */
    Status writeFile(const std::string &path) const;

  private:
    struct Pending
    {
        uint32_t type;
        std::vector<uint8_t> payload;
    };
    std::vector<Pending> sections_;
};

/**
 * A validated, immutable view of one STMF container. Cheap to copy:
 * the backing bytes (mapping or owned buffer) are shared, so section
 * spans handed out stay valid for as long as any copy — or any model
 * holding the backing keepalive — lives.
 */
class StmfFile
{
  public:
    /** One validated section-table entry. */
    struct Section
    {
        uint32_t type = 0;
        uint64_t offset = 0; //!< absolute, 8-aligned
        uint64_t length = 0;
        uint32_t crc = 0;
    };

    StmfFile() = default;

    /**
     * Open + fully validate @p path via @p mode. On any malformed
     * input @p out is left empty and the returned Status carries the
     * code, message and "offset N[, section S]" context.
     */
    static Status open(const std::string &path, LoadMode mode,
                       StmfFile &out);

    /** Validate an in-memory image (the Copy path without the file). */
    static Status parse(std::vector<uint8_t> bytes, StmfFile &out);

    /** True once open()/parse() succeeded on this instance. */
    bool valid() const { return backing_ != nullptr; }

    /** Load path actually used (meaningful when valid()). */
    LoadMode mode() const { return mode_; }

    /** Total container size in bytes. */
    size_t fileBytes() const { return bytes_.size(); }

    /** Whole-file CRC32C from the header (the model checksum). */
    uint32_t fileCrc() const { return fileCrc_; }

    /** Validated section table, in file order. */
    const std::vector<Section> &sections() const { return sections_; }

    /** True iff a section of @p type is present. */
    bool hasSection(SectionType type) const;

    /**
     * Payload bytes of the first section of @p type (empty span if
     * absent — pair with hasSection() to distinguish an empty
     * payload). The span points into the shared backing.
     */
    std::span<const uint8_t> section(SectionType type) const;

    /** Absolute file offset of @p type's payload (0 if absent). */
    uint64_t sectionOffset(SectionType type) const;

    /**
     * Keepalive for views into the backing bytes: a model that stores
     * spans into the mapping holds this alongside them.
     */
    std::shared_ptr<const void> keepAlive() const { return backing_; }

  private:
    static Status validate(std::span<const uint8_t> bytes,
                           std::vector<Section> &sections,
                           uint32_t &file_crc);

    std::shared_ptr<const void> backing_; //!< mapping or owned buffer
    std::span<const uint8_t> bytes_;
    std::vector<Section> sections_;
    uint32_t fileCrc_ = 0;
    LoadMode mode_ = LoadMode::Copy;
};

/**
 * Bounds-checked little-endian cursor over one section payload, the
 * primitive every payload decoder is written against. Each accessor
 * either fills its out-parameter or returns a Status whose context is
 * the *absolute file offset* of the failing read plus the section
 * name, so a malformed byte is reported where it sits in the file,
 * not relative to some payload-local origin.
 */
class SectionReader
{
  public:
    SectionReader(std::span<const uint8_t> payload,
                  uint64_t file_offset, std::string section)
        : bytes_(payload), base_(file_offset),
          section_(std::move(section))
    {
    }

    size_t pos() const { return pos_; }
    size_t remaining() const { return bytes_.size() - pos_; }

    Status u32(uint32_t &out);
    Status u64(uint64_t &out);
    Status f64(double &out);

    /**
     * A typed array of @p count little-endian elements starting at
     * the cursor, which must be 8-aligned relative to the section
     * start (sections themselves are 8-aligned in the file, so this
     * is absolute alignment — the property the mmap fixup path needs
     * to hand the bytes out as a typed span with no copy).
     */
    template <typename T>
    Status array(size_t count, std::span<const T> &out);

    /** Skip to the next 8-aligned cursor position. */
    Status align8();

    /** A length-prefixed (u32) string of at most @p max_len bytes. */
    Status str(std::string &out, size_t max_len = 4096);

    /** Fail unless the whole payload was consumed. */
    Status expectEnd();

    /** An error Status anchored at the cursor's file offset. */
    Status fail(StatusCode code, const std::string &message) const;

    /** An error Status anchored at @p at (payload-relative). */
    Status failAt(size_t at, StatusCode code,
                  const std::string &message) const;

  private:
    Status need(size_t n, const char *what);

    std::span<const uint8_t> bytes_;
    uint64_t base_ = 0;
    std::string section_;
    size_t pos_ = 0;
};

template <typename T>
Status
SectionReader::array(size_t count, std::span<const T> &out)
{
    static_assert(alignof(T) <= 8 && std::is_trivially_copyable_v<T>);
    ST_RETURN_IF_ERROR(align8());
    if (count > remaining() / sizeof(T))
        return fail(StatusCode::DataLoss,
                    "array of " + std::to_string(count) + " x " +
                        std::to_string(sizeof(T)) +
                        " bytes extends past section end");
    out = {reinterpret_cast<const T *>(bytes_.data() + pos_), count};
    pos_ += count * sizeof(T);
    return Status::ok();
}

/** Little-endian emit helpers mirroring SectionReader. */
class SectionWriter
{
  public:
    void u32(uint32_t v);
    void u64(uint64_t v);
    void f64(double v);
    void bytes(const void *data, size_t len);
    void align8();
    void str(std::string_view s);

    /** Emit a typed array (8-aligning first, matching the reader). */
    template <typename T>
    void
    array(std::span<const T> values)
    {
        align8();
        bytes(values.data(), values.size() * sizeof(T));
    }

    size_t size() const { return buf_.size(); }
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

} // namespace st::model

#endif // ST_MODEL_STMF_HPP
