/**
 * @file
 * STMF payload codecs + the high-level model load/pack API.
 *
 * Three model kinds ship in an STMF container (stmf.hpp):
 *
 *   - "tnn":  a TnnNetwork — per-layer ColumnParams + trained weights.
 *             Decoding rebuilds Columns (their lazy response-model
 *             caches are derived state), so both load paths copy the
 *             weight doubles; the win over tnn_io text is skipping the
 *             17-digit decimal round-trip, not the copy.
 *   - "plan": a compiled s-t network — the live EvalProgram of
 *             Network::compile() plus the config-node values and
 *             output slots it needs to run stand-alone. This is the
 *             mmap + pointer-fixup path: PlanModel executes spans
 *             that point straight into the file backing.
 *   - "lsm":  the LSM anomaly model's ReservoirParams + scoring knobs
 *             (reservoirs themselves are deterministically re-derived
 *             per session from the seed).
 *
 * A "plan" container may additionally carry a "grl" section (the
 * circuit CSR netlist compileToGrl produces) for hardware-path
 * consumers; decodeGrl rebuilds it through addGateUnchecked and gates
 * it behind Circuit::validate().
 *
 * Every decoder treats the payload as hostile: counts are checked
 * against the section extent before anything is allocated, indices
 * are range-checked (instruction operands must reference earlier
 * slots — the topological invariant the executors assume), and every
 * rejection is a contextual st::Status. loadModel() finishes with a
 * smoke evaluation so a file that parses but cannot run is rejected
 * before it is ever published.
 */

#ifndef ST_MODEL_SERIALIZE_HPP
#define ST_MODEL_SERIALIZE_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/eval_plan.hpp"
#include "core/network.hpp"
#include "grl/netlist.hpp"
#include "model/stmf.hpp"
#include "tnn/lsm.hpp"
#include "tnn/tnn_network.hpp"

namespace st::model {

/** Identity + provenance of one packed/loaded model. */
struct ModelInfo
{
    std::string kind;        //!< "tnn" | "plan" | "lsm"
    std::string id;          //!< operator-chosen model name
    uint64_t version = 0;    //!< monotone model version (not format)
    uint64_t inputWidth = 0; //!< expected volley width
    /** Filled by the loader (not stored in META). */
    uint32_t fileCrc = 0;
    uint64_t fileBytes = 0;
    LoadMode mode = LoadMode::Copy;
    std::string path;
};

/**
 * A compiled s-t network model executable without its Network: the
 * live instruction stream (viewed in place — in the file mapping on
 * the mmap path, in the shared read buffer on the copy path), a
 * minimal node table rebuilt for Config value reads, and the output
 * gather slots. Immutable after decode; evaluate() is const and
 * thread-safe with per-caller scratch.
 */
class PlanModel
{
  public:
    size_t numInputs() const { return numInputs_; }
    size_t numOutputs() const { return program_.outSlot.size(); }

    /** Original node count of the compiled network (diagnostics). */
    size_t numNodes() const { return numNodes_; }

    /** The validated instruction stream (views into the backing). */
    const EvalProgramView &program() const { return program_; }

    /** Evaluate one volley into @p out (resized to numOutputs()). */
    void evaluate(std::span<const Time> inputs, EvalScratch &scratch,
                  std::vector<Time> &out) const;

  private:
    friend Status decodePlan(const StmfFile &file, PlanModel &out);

    EvalProgramView program_;
    /**
     * Owned copy of the extra array with Config operands remapped to
     * dense indices into nodes_. The on-disk stream stores original
     * network node ids, which may be sparse in a huge (mostly dead)
     * node space; remapping bounds the rebuilt table by the config
     * count instead of letting a hostile node-count claim drive the
     * allocation. All other program arrays view the file backing.
     */
    std::vector<uint32_t> extra_;
    std::vector<Node> nodes_; //!< dense Config value table
    uint64_t numInputs_ = 0;
    uint64_t numNodes_ = 0;
    std::shared_ptr<const void> backing_; //!< keeps the views alive
};

/** The LSM serve model's full configuration. */
struct LsmModelConfig
{
    ReservoirParams params;
    uint64_t stepsPerVolley = 8;
    double emaAlpha = 0.2;
};

// --- section codecs -------------------------------------------------

std::vector<uint8_t> encodeMeta(const ModelInfo &info);
Status decodeMeta(const StmfFile &file, ModelInfo &out);

std::vector<uint8_t> encodeTnn(const TnnNetwork &net);
Status decodeTnn(const StmfFile &file, TnnNetwork &out);

/** Compile (or fetch) @p net's plan and serialize the live program. */
std::vector<uint8_t> encodePlan(const Network &net);
Status decodePlan(const StmfFile &file, PlanModel &out);

std::vector<uint8_t> encodeGrl(const grl::Circuit &circuit);
Status decodeGrl(const StmfFile &file, grl::Circuit &out);

std::vector<uint8_t> encodeLsm(const LsmModelConfig &config);
Status decodeLsm(const StmfFile &file, LsmModelConfig &out);

// --- whole-file pack / load ----------------------------------------

/** Operator-chosen identity attached to a packed file. */
struct PackOptions
{
    std::string id = "model";
    uint64_t version = 1;
};

/** Pack a TNN into "<path>" (atomic publish; see StmfBuilder). */
Status packTnn(const TnnNetwork &net, const std::string &path,
               const PackOptions &options);

/**
 * Pack a compiled network as a "plan" model; @p with_grl additionally
 * compiles the network to a GRL netlist and embeds its CSR section.
 */
Status packNetwork(const Network &net, const std::string &path,
                   const PackOptions &options, bool with_grl = false);

/** Pack an LSM anomaly-model configuration. */
Status packLsm(const LsmModelConfig &config, const std::string &path,
               const PackOptions &options);

/**
 * One loaded model of any kind: info.kind names which pointer is set.
 * The pointers are shared so a serving layer can hand the payload to
 * a ServeModel while the registry keeps the info.
 */
struct LoadedModel
{
    ModelInfo info;
    std::shared_ptr<TnnNetwork> tnn;
    std::shared_ptr<PlanModel> plan;
    std::shared_ptr<LsmModelConfig> lsm;
};

/**
 * Open + validate @p path, decode META + the kind's payload section,
 * and run one smoke volley (all-zero inputs) through the decoded
 * model — the canary's "does it actually evaluate" leg. On any
 * failure @p out is untouched and the incumbent (if any) is the
 * caller's to keep serving.
 */
Status loadModel(const std::string &path, LoadMode mode,
                 LoadedModel &out);

} // namespace st::model

#endif // ST_MODEL_SERIALIZE_HPP
