#include "model/crc32c.hpp"

#include <array>

namespace st::model {

namespace {

/** Reflected CRC32C polynomial (Castagnoli). */
constexpr uint32_t kPoly = 0x82f63b78u;

/**
 * Slicing-by-8 tables: kTables[0] is the classic byte-at-a-time
 * table; kTables[k][n] advances the CRC of byte n through k further
 * zero bytes, so eight table lookups retire eight message bytes per
 * iteration. Pure integer math — results are bit-identical across
 * ISAs and to the one-byte loop (the tail still uses kTables[0]).
 */
constexpr std::array<std::array<uint32_t, 256>, 8>
makeTables()
{
    std::array<std::array<uint32_t, 256>, 8> tables{};
    for (uint32_t n = 0; n < 256; ++n) {
        uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
        tables[0][n] = c;
    }
    for (size_t k = 1; k < 8; ++k)
        for (uint32_t n = 0; n < 256; ++n)
            tables[k][n] = tables[0][tables[k - 1][n] & 0xffu] ^
                           (tables[k - 1][n] >> 8);
    return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables =
    makeTables();

/** Endian-independent little-endian 32-bit load. */
inline uint32_t
loadLe32(const unsigned char *p)
{
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

} // namespace

uint32_t
crc32cExtend(uint32_t crc, const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    uint32_t c = crc ^ 0xffffffffu;
    while (len >= 8) {
        const uint32_t lo = c ^ loadLe32(p);
        const uint32_t hi = loadLe32(p + 4);
        c = kTables[7][lo & 0xffu] ^ kTables[6][(lo >> 8) & 0xffu] ^
            kTables[5][(lo >> 16) & 0xffu] ^ kTables[4][lo >> 24] ^
            kTables[3][hi & 0xffu] ^ kTables[2][(hi >> 8) & 0xffu] ^
            kTables[1][(hi >> 16) & 0xffu] ^ kTables[0][hi >> 24];
        p += 8;
        len -= 8;
    }
    for (size_t i = 0; i < len; ++i)
        c = kTables[0][(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace st::model
