/**
 * @file
 * CRC32C (Castagnoli) for the STMF model container (model/stmf.hpp).
 *
 * Software table-driven implementation: the container's integrity
 * checks must behave identically on every build target (x86-64 with or
 * without SSE4.2, aarch64), because a checksum that depends on the
 * reader's ISA would make a file valid on one machine and corrupt on
 * another. At ~1 GB/s the table walk is far from the load path's
 * bottleneck — model files are re-checksummed once per load, not per
 * volley.
 */

#ifndef ST_MODEL_CRC32C_HPP
#define ST_MODEL_CRC32C_HPP

#include <cstddef>
#include <cstdint>

namespace st::model {

/**
 * Extend a running CRC32C over @p len bytes. Start (and finish) with
 * @p crc = 0; chained calls over consecutive slices equal one call
 * over the concatenation, so section checksums can be computed while
 * streaming the payload out.
 */
uint32_t crc32cExtend(uint32_t crc, const void *data, size_t len);

/** One-shot CRC32C of a buffer. */
inline uint32_t
crc32c(const void *data, size_t len)
{
    return crc32cExtend(0, data, len);
}

} // namespace st::model

#endif // ST_MODEL_CRC32C_HPP
