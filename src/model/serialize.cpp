/**
 * @file
 * STMF payload codecs + model load/pack (see serialize.hpp).
 *
 * Decoder discipline: read counts first, let SectionReader::array
 * bound every count against the section extent before anything is
 * allocated, then cross-validate the structural claims (CSR
 * monotonicity, topological operand order, arities, index ranges).
 * Only a stream that passes everything is assembled into a model.
 */

#include "model/serialize.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "grl/compile.hpp"

namespace st::model {

namespace {

constexpr uint64_t kInfRep = std::numeric_limits<uint64_t>::max();

/** Plausibility caps on decoded dimensions. The section extent already
 *  bounds array counts; these bound the *derived* allocations (probe
 *  volleys, layer weight matrices) a hostile-but-checksummed file
 *  could otherwise inflate. */
constexpr uint64_t kMaxInputWidth = 1ull << 24;
constexpr uint64_t kMaxLayers = 4096;
constexpr uint64_t kMaxLayerDim = 1ull << 20;
constexpr uint64_t kMaxLsmNeurons = 4096; //!< reservoir build is O(n^2)
constexpr uint64_t kMaxLsmSteps = 1ull << 20;

uint64_t
timeRep(Time t)
{
    return t.isInf() ? kInfRep : t.value();
}

Time
timeFromRep(uint64_t v)
{
    return v == kInfRep ? INF : Time(v);
}

Status
missingSection(SectionType type)
{
    return Status(StatusCode::NotFound,
                  "stmf: required section is absent",
                  "section " + sectionName(static_cast<uint32_t>(type)));
}

SectionReader
readerFor(const StmfFile &file, SectionType type)
{
    return SectionReader(file.section(type), file.sectionOffset(type),
                         sectionName(static_cast<uint32_t>(type)));
}

} // namespace

// --- meta -----------------------------------------------------------

std::vector<uint8_t>
encodeMeta(const ModelInfo &info)
{
    SectionWriter w;
    w.str(info.kind);
    w.str(info.id);
    w.u64(info.version);
    w.u64(info.inputWidth);
    return w.take();
}

Status
decodeMeta(const StmfFile &file, ModelInfo &out)
{
    if (!file.hasSection(SectionType::Meta))
        return missingSection(SectionType::Meta);
    SectionReader r = readerFor(file, SectionType::Meta);
    ModelInfo info;
    ST_RETURN_IF_ERROR(r.str(info.kind, 32));
    ST_RETURN_IF_ERROR(r.str(info.id, 256));
    ST_RETURN_IF_ERROR(r.u64(info.version));
    ST_RETURN_IF_ERROR(r.u64(info.inputWidth));
    ST_RETURN_IF_ERROR(r.expectEnd());
    if (info.kind != "tnn" && info.kind != "plan" && info.kind != "lsm")
        return r.fail(StatusCode::InvalidArgument,
                      "unknown model kind \"" + info.kind + "\"");
    if (info.inputWidth == 0 || info.inputWidth > kMaxInputWidth)
        return r.fail(StatusCode::OutOfRange,
                      "implausible input width " +
                          std::to_string(info.inputWidth));
    out.kind = std::move(info.kind);
    out.id = std::move(info.id);
    out.version = info.version;
    out.inputWidth = info.inputWidth;
    return Status::ok();
}

// --- tnn ------------------------------------------------------------

std::vector<uint8_t>
encodeTnn(const TnnNetwork &net)
{
    SectionWriter w;
    w.u64(net.numLayers());
    for (size_t l = 0; l < net.numLayers(); ++l) {
        const Column &col = net.layer(l);
        const ColumnParams &p = col.params();
        w.u64(p.numInputs);
        w.u64(p.numNeurons);
        w.u64(static_cast<uint64_t>(static_cast<int64_t>(p.threshold)));
        w.u64(p.maxWeight);
        w.u64(static_cast<uint64_t>(p.shape));
        w.f64(p.tauSlow);
        w.f64(p.tauFast);
        w.u64(p.rise);
        w.u64(p.fall);
        w.u64(p.wtaTau);
        w.u64(p.wtaK);
        w.f64(p.initWeight);
        w.f64(p.initJitter);
        w.u64(p.fatigue);
        w.u64(p.seed);
        // Row-major weight matrix; rows are contiguous because every
        // field above is 8 bytes, so the cursor is already aligned.
        for (size_t n = 0; n < p.numNeurons; ++n)
            w.array<double>(col.weights(n));
    }
    return w.take();
}

Status
decodeTnn(const StmfFile &file, TnnNetwork &out)
{
    if (!file.hasSection(SectionType::Tnn))
        return missingSection(SectionType::Tnn);
    SectionReader r = readerFor(file, SectionType::Tnn);

    uint64_t num_layers = 0;
    ST_RETURN_IF_ERROR(r.u64(num_layers));
    if (num_layers == 0 || num_layers > kMaxLayers)
        return r.fail(StatusCode::OutOfRange,
                      "implausible layer count " +
                          std::to_string(num_layers));

    TnnNetwork net;
    uint64_t prev_width = 0;
    for (uint64_t l = 0; l < num_layers; ++l) {
        uint64_t num_inputs = 0, num_neurons = 0, threshold = 0,
                 max_weight = 0, shape = 0, fatigue = 0, seed = 0;
        ColumnParams p;
        ST_RETURN_IF_ERROR(r.u64(num_inputs));
        ST_RETURN_IF_ERROR(r.u64(num_neurons));
        ST_RETURN_IF_ERROR(r.u64(threshold));
        ST_RETURN_IF_ERROR(r.u64(max_weight));
        ST_RETURN_IF_ERROR(r.u64(shape));
        ST_RETURN_IF_ERROR(r.f64(p.tauSlow));
        ST_RETURN_IF_ERROR(r.f64(p.tauFast));
        ST_RETURN_IF_ERROR(r.u64(p.rise));
        ST_RETURN_IF_ERROR(r.u64(p.fall));
        ST_RETURN_IF_ERROR(r.u64(p.wtaTau));
        uint64_t wta_k = 0;
        ST_RETURN_IF_ERROR(r.u64(wta_k));
        ST_RETURN_IF_ERROR(r.f64(p.initWeight));
        ST_RETURN_IF_ERROR(r.f64(p.initJitter));
        ST_RETURN_IF_ERROR(r.u64(fatigue));
        ST_RETURN_IF_ERROR(r.u64(seed));

        const std::string layer = "layer " + std::to_string(l);
        if (num_inputs == 0 || num_inputs > kMaxLayerDim ||
            num_neurons == 0 || num_neurons > kMaxLayerDim)
            return r.fail(StatusCode::OutOfRange,
                          layer + ": implausible dimensions " +
                              std::to_string(num_inputs) + "x" +
                              std::to_string(num_neurons));
        if (l > 0 && num_inputs != prev_width)
            return r.fail(StatusCode::FailedPrecondition,
                          layer + ": input width " +
                              std::to_string(num_inputs) +
                              " does not chain from previous layer's " +
                              std::to_string(prev_width) + " neurons");
        const int64_t thr = static_cast<int64_t>(threshold);
        if (thr < std::numeric_limits<int32_t>::min() ||
            thr > std::numeric_limits<int32_t>::max())
            return r.fail(StatusCode::OutOfRange,
                          layer + ": threshold out of range");
        if (shape > static_cast<uint64_t>(ResponseShape::PiecewiseLinear))
            return r.fail(StatusCode::InvalidArgument,
                          layer + ": unknown response shape " +
                              std::to_string(shape));
        if (!std::isfinite(p.tauSlow) || !std::isfinite(p.tauFast) ||
            !std::isfinite(p.initWeight) || !std::isfinite(p.initJitter))
            return r.fail(StatusCode::InvalidArgument,
                          layer + ": non-finite response parameter");
        p.numInputs = num_inputs;
        p.numNeurons = num_neurons;
        p.threshold = static_cast<ResponseFunction::Amp>(thr);
        p.maxWeight = max_weight;
        p.shape = static_cast<ResponseShape>(shape);
        p.wtaK = wta_k;
        p.fatigue = fatigue;
        p.seed = seed;

        std::span<const double> weights;
        ST_RETURN_IF_ERROR(r.array(num_inputs * num_neurons, weights));
        for (size_t i = 0; i < weights.size(); ++i)
            if (!std::isfinite(weights[i]) || weights[i] < 0.0 ||
                weights[i] > 1.0)
                return r.fail(StatusCode::InvalidArgument,
                              layer + ": weight " + std::to_string(i) +
                                  " outside [0, 1]");

        // addLayer / the Column ctor still own the deep parameter
        // checks; anything they reject is a malformed file, not a
        // crash. The direct-weights ctor skips the seeded random
        // init the stored weights would overwrite — on the demo TNN
        // that init is most of the decode cost.
        try {
            std::vector<std::vector<double>> rows(num_neurons);
            for (size_t n = 0; n < num_neurons; ++n)
                rows[n].assign(weights.begin() + n * num_inputs,
                               weights.begin() + (n + 1) * num_inputs);
            net.addLayer(Column(p, std::move(rows)));
        } catch (const std::exception &e) {
            return r.fail(StatusCode::InvalidArgument,
                          layer + ": rejected: " + e.what());
        }
        prev_width = num_neurons;
    }
    ST_RETURN_IF_ERROR(r.expectEnd());
    out = std::move(net);
    return Status::ok();
}

// --- plan -----------------------------------------------------------

std::vector<uint8_t>
encodePlan(const Network &net)
{
    const EvalPlan &plan = net.compile();
    const EvalProgram &prog = plan.live;

    SectionWriter w;
    w.u64(net.numInputs());
    w.u64(prog.outSlot.size());
    w.u64(net.size());
    w.u64(prog.size());
    w.u64(prog.argSlot.size());
    w.u64(prog.runEnd.size());
    w.u64(plan.configNodes.size());
    w.array<uint8_t>(prog.op);
    w.array<uint32_t>(prog.extra);
    w.array<uint32_t>(prog.argBeg);
    w.array<uint32_t>(prog.argSlot);
    w.array<Time::rep>(prog.argDelay);
    w.array<uint32_t>(prog.runEnd);
    w.array<uint32_t>(prog.outSlot);
    w.array<uint32_t>(plan.configNodes);
    std::vector<uint64_t> config_vals;
    config_vals.reserve(plan.configNodes.size());
    for (uint32_t id : plan.configNodes)
        config_vals.push_back(timeRep(net.getConfig(id)));
    w.array<uint64_t>(config_vals);
    return w.take();
}

Status
decodePlan(const StmfFile &file, PlanModel &out)
{
    if (!file.hasSection(SectionType::Plan))
        return missingSection(SectionType::Plan);
    SectionReader r = readerFor(file, SectionType::Plan);

    uint64_t num_inputs = 0, num_outputs = 0, num_nodes = 0,
             num_instrs = 0, num_edges = 0, num_runs = 0,
             num_configs = 0;
    ST_RETURN_IF_ERROR(r.u64(num_inputs));
    ST_RETURN_IF_ERROR(r.u64(num_outputs));
    ST_RETURN_IF_ERROR(r.u64(num_nodes));
    ST_RETURN_IF_ERROR(r.u64(num_instrs));
    ST_RETURN_IF_ERROR(r.u64(num_edges));
    ST_RETURN_IF_ERROR(r.u64(num_runs));
    ST_RETURN_IF_ERROR(r.u64(num_configs));

    if (num_inputs == 0 || num_inputs > kMaxInputWidth)
        return r.fail(StatusCode::OutOfRange,
                      "implausible input width " +
                          std::to_string(num_inputs));
    // Instruction/edge indices travel as u32 (argBeg, argSlot, runEnd).
    const uint64_t u32_max = std::numeric_limits<uint32_t>::max();
    if (num_instrs > u32_max || num_edges > u32_max)
        return r.fail(StatusCode::OutOfRange,
                      "instruction or edge count exceeds u32 range");
    if (num_configs > num_instrs)
        return r.fail(StatusCode::FailedPrecondition,
                      "config count " + std::to_string(num_configs) +
                          " exceeds instruction count " +
                          std::to_string(num_instrs));
    if (num_nodes < num_instrs)
        return r.fail(StatusCode::FailedPrecondition,
                      "node count below live instruction count");

    std::span<const uint8_t> op;
    std::span<const uint32_t> extra, arg_beg, arg_slot, run_end,
        out_slot, config_id;
    std::span<const Time::rep> arg_delay;
    std::span<const uint64_t> config_val;
    ST_RETURN_IF_ERROR(r.array(num_instrs, op));
    ST_RETURN_IF_ERROR(r.array(num_instrs, extra));
    ST_RETURN_IF_ERROR(r.array(num_instrs + 1, arg_beg));
    ST_RETURN_IF_ERROR(r.array(num_edges, arg_slot));
    ST_RETURN_IF_ERROR(r.array(num_edges, arg_delay));
    ST_RETURN_IF_ERROR(r.array(num_runs, run_end));
    ST_RETURN_IF_ERROR(r.array(num_outputs, out_slot));
    ST_RETURN_IF_ERROR(r.array(num_configs, config_id));
    ST_RETURN_IF_ERROR(r.array(num_configs, config_val));
    ST_RETURN_IF_ERROR(r.expectEnd());

    // CSR envelope.
    if (arg_beg[0] != 0)
        return r.fail(StatusCode::FailedPrecondition,
                      "argBeg[0] must be 0");
    for (uint64_t i = 0; i < num_instrs; ++i)
        if (arg_beg[i] > arg_beg[i + 1])
            return r.fail(StatusCode::FailedPrecondition,
                          "argBeg not monotone at instruction " +
                              std::to_string(i));
    if (arg_beg[num_instrs] != num_edges)
        return r.fail(StatusCode::FailedPrecondition,
                      "argBeg ends at " +
                          std::to_string(arg_beg[num_instrs]) +
                          ", expected edge count " +
                          std::to_string(num_edges));

    // Config node id -> dense table slot.
    std::unordered_map<uint32_t, uint32_t> config_slot;
    config_slot.reserve(num_configs);
    for (uint64_t k = 0; k < num_configs; ++k) {
        if (config_id[k] >= num_nodes)
            return r.fail(StatusCode::OutOfRange,
                          "config node id " +
                              std::to_string(config_id[k]) +
                              " outside node count " +
                              std::to_string(num_nodes));
        if (!config_slot
                 .emplace(config_id[k], static_cast<uint32_t>(k))
                 .second)
            return r.fail(StatusCode::FailedPrecondition,
                          "duplicate config node id " +
                              std::to_string(config_id[k]));
    }

    // Per-instruction structure: known opcode, per-op arity, operands
    // strictly before their consumer (the topological invariant every
    // executor assumes), fast binary forms delay-free.
    std::vector<uint32_t> extra_owned(extra.begin(), extra.end());
    for (uint64_t i = 0; i < num_instrs; ++i) {
        const std::string instr = "instruction " + std::to_string(i);
        if (op[i] > static_cast<uint8_t>(PlanOp::Lt2))
            return r.fail(StatusCode::InvalidArgument,
                          instr + ": unknown opcode " +
                              std::to_string(op[i]));
        const PlanOp o = static_cast<PlanOp>(op[i]);
        const uint64_t arity = arg_beg[i + 1] - arg_beg[i];
        switch (o) {
        case PlanOp::Input:
            if (arity != 0)
                return r.fail(StatusCode::FailedPrecondition,
                              instr + ": input with operands");
            if (extra[i] >= num_inputs)
                return r.fail(StatusCode::OutOfRange,
                              instr + ": input index " +
                                  std::to_string(extra[i]) +
                                  " outside width " +
                                  std::to_string(num_inputs));
            break;
        case PlanOp::Config: {
            if (arity != 0)
                return r.fail(StatusCode::FailedPrecondition,
                              instr + ": config with operands");
            auto it = config_slot.find(extra[i]);
            if (it == config_slot.end())
                return r.fail(StatusCode::FailedPrecondition,
                              instr + ": config node " +
                                  std::to_string(extra[i]) +
                                  " has no stored value");
            extra_owned[i] = it->second;
            break;
        }
        case PlanOp::Min:
        case PlanOp::Max:
            if (arity == 0)
                return r.fail(StatusCode::FailedPrecondition,
                              instr + ": nullary min/max");
            break;
        case PlanOp::Lt:
        case PlanOp::Min2:
        case PlanOp::Max2:
        case PlanOp::Lt2:
            if (arity != 2)
                return r.fail(StatusCode::FailedPrecondition,
                              instr + ": binary op with " +
                                  std::to_string(arity) + " operands");
            break;
        }
        for (uint64_t e = arg_beg[i]; e < arg_beg[i + 1]; ++e) {
            if (arg_slot[e] >= i)
                return r.fail(StatusCode::FailedPrecondition,
                              instr + ": operand slot " +
                                  std::to_string(arg_slot[e]) +
                                  " is not strictly earlier");
            if ((o == PlanOp::Min2 || o == PlanOp::Max2 ||
                 o == PlanOp::Lt2) &&
                arg_delay[e] != 0)
                return r.fail(StatusCode::FailedPrecondition,
                              instr +
                                  ": fast binary form with non-zero "
                                  "edge delay");
        }
    }

    // Run table: strictly increasing, op-uniform, covers the stream.
    if (num_instrs == 0) {
        if (num_runs != 0)
            return r.fail(StatusCode::FailedPrecondition,
                          "run table on an empty stream");
    } else {
        uint64_t prev = 0;
        for (uint64_t k = 0; k < num_runs; ++k) {
            if (run_end[k] <= prev || run_end[k] > num_instrs)
                return r.fail(StatusCode::FailedPrecondition,
                              "run table not strictly increasing at "
                              "entry " +
                                  std::to_string(k));
            for (uint64_t j = prev; j < run_end[k]; ++j)
                if (op[j] != op[prev])
                    return r.fail(StatusCode::FailedPrecondition,
                                  "mixed opcodes inside run " +
                                      std::to_string(k));
            prev = run_end[k];
        }
        if (prev != num_instrs)
            return r.fail(StatusCode::FailedPrecondition,
                          "run table ends at " + std::to_string(prev) +
                              ", expected " +
                              std::to_string(num_instrs));
    }

    for (uint64_t k = 0; k < num_outputs; ++k)
        if (out_slot[k] >= num_instrs)
            return r.fail(StatusCode::OutOfRange,
                          "output " + std::to_string(k) +
                              " gathers slot " +
                              std::to_string(out_slot[k]) +
                              " outside the stream");

    PlanModel model;
    model.numInputs_ = num_inputs;
    model.numNodes_ = num_nodes;
    model.extra_ = std::move(extra_owned);
    model.nodes_.resize(num_configs);
    for (uint64_t k = 0; k < num_configs; ++k) {
        model.nodes_[k].op = Op::Config;
        model.nodes_[k].configValue = timeFromRep(config_val[k]);
    }
    model.program_ = {op,      model.extra_, arg_beg, arg_slot,
                      arg_delay, out_slot,   run_end};
    model.backing_ = file.keepAlive();
    out = std::move(model);
    return Status::ok();
}

void
PlanModel::evaluate(std::span<const Time> inputs, EvalScratch &scratch,
                    std::vector<Time> &out) const
{
    runProgram(program_, nodes_, inputs, scratch.values);
    out.resize(program_.outSlot.size());
    for (size_t k = 0; k < program_.outSlot.size(); ++k)
        out[k] = scratch.values[program_.outSlot[k]];
}

// --- grl ------------------------------------------------------------

std::vector<uint8_t>
encodeGrl(const grl::Circuit &circuit)
{
    const auto &gates = circuit.gates();
    std::vector<uint8_t> kind;
    std::vector<uint32_t> stages;
    std::vector<uint64_t> const_time;
    std::vector<uint32_t> fanin_beg{0};
    std::vector<uint32_t> fanin;
    kind.reserve(gates.size());
    stages.reserve(gates.size());
    const_time.reserve(gates.size());
    fanin_beg.reserve(gates.size() + 1);
    for (const grl::Gate &g : gates) {
        kind.push_back(static_cast<uint8_t>(g.kind));
        stages.push_back(g.stages);
        const_time.push_back(timeRep(g.constTime));
        fanin.insert(fanin.end(), g.fanin.begin(), g.fanin.end());
        fanin_beg.push_back(static_cast<uint32_t>(fanin.size()));
    }

    SectionWriter w;
    w.u64(circuit.numInputs());
    w.u64(gates.size());
    w.u64(fanin.size());
    w.u64(circuit.outputs().size());
    w.array<uint8_t>(kind);
    w.array<uint32_t>(stages);
    w.array<uint64_t>(const_time);
    w.array<uint32_t>(fanin_beg);
    w.array<uint32_t>(fanin);
    w.array<uint32_t>(circuit.outputs());
    return w.take();
}

Status
decodeGrl(const StmfFile &file, grl::Circuit &out)
{
    if (!file.hasSection(SectionType::Grl))
        return missingSection(SectionType::Grl);
    SectionReader r = readerFor(file, SectionType::Grl);

    uint64_t num_inputs = 0, num_gates = 0, num_edges = 0,
             num_outputs = 0;
    ST_RETURN_IF_ERROR(r.u64(num_inputs));
    ST_RETURN_IF_ERROR(r.u64(num_gates));
    ST_RETURN_IF_ERROR(r.u64(num_edges));
    ST_RETURN_IF_ERROR(r.u64(num_outputs));
    if (num_inputs > num_gates)
        return r.fail(StatusCode::FailedPrecondition,
                      "input count " + std::to_string(num_inputs) +
                          " exceeds gate count " +
                          std::to_string(num_gates));
    if (num_gates > std::numeric_limits<uint32_t>::max() ||
        num_edges > std::numeric_limits<uint32_t>::max())
        return r.fail(StatusCode::OutOfRange,
                      "gate or edge count exceeds u32 range");

    std::span<const uint8_t> kind;
    std::span<const uint32_t> stages, fanin_beg, fanin, outputs;
    std::span<const uint64_t> const_time;
    ST_RETURN_IF_ERROR(r.array(num_gates, kind));
    ST_RETURN_IF_ERROR(r.array(num_gates, stages));
    ST_RETURN_IF_ERROR(r.array(num_gates, const_time));
    ST_RETURN_IF_ERROR(r.array(num_gates + 1, fanin_beg));
    ST_RETURN_IF_ERROR(r.array(num_edges, fanin));
    ST_RETURN_IF_ERROR(r.array(num_outputs, outputs));
    ST_RETURN_IF_ERROR(r.expectEnd());

    if (fanin_beg[0] != 0)
        return r.fail(StatusCode::FailedPrecondition,
                      "faninBeg[0] must be 0");
    for (uint64_t i = 0; i < num_gates; ++i) {
        if (fanin_beg[i] > fanin_beg[i + 1])
            return r.fail(StatusCode::FailedPrecondition,
                          "faninBeg not monotone at gate " +
                              std::to_string(i));
        if (kind[i] > static_cast<uint8_t>(grl::GateKind::Delay))
            return r.fail(StatusCode::InvalidArgument,
                          "gate " + std::to_string(i) +
                              ": unknown kind " +
                              std::to_string(kind[i]));
    }
    if (fanin_beg[num_gates] != num_edges)
        return r.fail(StatusCode::FailedPrecondition,
                      "faninBeg ends at " +
                          std::to_string(fanin_beg[num_gates]) +
                          ", expected edge count " +
                          std::to_string(num_edges));
    for (uint64_t i = 0; i < num_inputs; ++i) {
        if (kind[i] != static_cast<uint8_t>(grl::GateKind::Input))
            return r.fail(StatusCode::FailedPrecondition,
                          "gate " + std::to_string(i) +
                              " in the input prefix is not an input");
        if (fanin_beg[i + 1] != fanin_beg[i])
            return r.fail(StatusCode::FailedPrecondition,
                          "input gate " + std::to_string(i) +
                              " has fanin edges");
    }
    for (uint64_t k = 0; k < num_outputs; ++k)
        if (outputs[k] >= num_gates)
            return r.fail(StatusCode::OutOfRange,
                          "output " + std::to_string(k) +
                              " references gate " +
                              std::to_string(outputs[k]) +
                              " outside the netlist");

    // The constructor pre-seeds the input prefix; everything after it
    // goes in unchecked and is gated behind the structural validator
    // (fanin ranges, arities, delay-free cycles).
    grl::Circuit circuit(num_inputs);
    for (uint64_t i = num_inputs; i < num_gates; ++i) {
        grl::Gate g;
        g.kind = static_cast<grl::GateKind>(kind[i]);
        g.fanin.assign(fanin.begin() + fanin_beg[i],
                       fanin.begin() + fanin_beg[i + 1]);
        g.stages = stages[i];
        g.constTime = timeFromRep(const_time[i]);
        circuit.addGateUnchecked(std::move(g));
    }
    for (uint64_t k = 0; k < num_outputs; ++k)
        circuit.markOutput(outputs[k]);
    if (Status v = circuit.validate(); !v.isOk())
        return r.failAt(0, v.code(),
                        "circuit validation failed: " + v.message() +
                            (v.context().empty()
                                 ? ""
                                 : " (" + v.context() + ")"));
    out = std::move(circuit);
    return Status::ok();
}

// --- lsm ------------------------------------------------------------

std::vector<uint8_t>
encodeLsm(const LsmModelConfig &config)
{
    const ReservoirParams &p = config.params;
    SectionWriter w;
    w.u64(p.numInputs);
    w.u64(p.numNeurons);
    w.u64(p.refractory);
    w.u64(p.seed);
    w.u64(config.stepsPerVolley);
    w.f64(p.connectProb);
    w.f64(p.inputProb);
    w.f64(p.excitatoryFraction);
    w.f64(p.weightScale);
    w.f64(p.inputScale);
    w.f64(p.leak);
    w.f64(p.threshold);
    w.f64(p.traceLeak);
    w.f64(config.emaAlpha);
    return w.take();
}

Status
decodeLsm(const StmfFile &file, LsmModelConfig &out)
{
    if (!file.hasSection(SectionType::Lsm))
        return missingSection(SectionType::Lsm);
    SectionReader r = readerFor(file, SectionType::Lsm);

    LsmModelConfig cfg;
    ReservoirParams &p = cfg.params;
    uint64_t num_inputs = 0, num_neurons = 0, refractory = 0;
    ST_RETURN_IF_ERROR(r.u64(num_inputs));
    ST_RETURN_IF_ERROR(r.u64(num_neurons));
    ST_RETURN_IF_ERROR(r.u64(refractory));
    ST_RETURN_IF_ERROR(r.u64(p.seed));
    ST_RETURN_IF_ERROR(r.u64(cfg.stepsPerVolley));
    ST_RETURN_IF_ERROR(r.f64(p.connectProb));
    ST_RETURN_IF_ERROR(r.f64(p.inputProb));
    ST_RETURN_IF_ERROR(r.f64(p.excitatoryFraction));
    ST_RETURN_IF_ERROR(r.f64(p.weightScale));
    ST_RETURN_IF_ERROR(r.f64(p.inputScale));
    ST_RETURN_IF_ERROR(r.f64(p.leak));
    ST_RETURN_IF_ERROR(r.f64(p.threshold));
    ST_RETURN_IF_ERROR(r.f64(p.traceLeak));
    ST_RETURN_IF_ERROR(r.f64(cfg.emaAlpha));
    ST_RETURN_IF_ERROR(r.expectEnd());

    if (num_inputs == 0 || num_inputs > kMaxInputWidth)
        return r.fail(StatusCode::OutOfRange,
                      "implausible input count " +
                          std::to_string(num_inputs));
    if (num_neurons == 0 || num_neurons > kMaxLsmNeurons)
        return r.fail(StatusCode::OutOfRange,
                      "implausible reservoir size " +
                          std::to_string(num_neurons));
    if (refractory > std::numeric_limits<uint32_t>::max())
        return r.fail(StatusCode::OutOfRange,
                      "refractory exceeds u32 range");
    if (cfg.stepsPerVolley == 0 || cfg.stepsPerVolley > kMaxLsmSteps)
        return r.fail(StatusCode::OutOfRange,
                      "implausible steps-per-volley " +
                          std::to_string(cfg.stepsPerVolley));
    const auto probability = [](double v) {
        return std::isfinite(v) && v >= 0.0 && v <= 1.0;
    };
    if (!probability(p.connectProb) || !probability(p.inputProb) ||
        !probability(p.excitatoryFraction) || !probability(p.leak) ||
        !probability(p.traceLeak))
        return r.fail(StatusCode::InvalidArgument,
                      "probability parameter outside [0, 1]");
    if (!std::isfinite(p.weightScale) || !std::isfinite(p.inputScale) ||
        !std::isfinite(p.threshold))
        return r.fail(StatusCode::InvalidArgument,
                      "non-finite reservoir parameter");
    if (!std::isfinite(cfg.emaAlpha) || cfg.emaAlpha <= 0.0 ||
        cfg.emaAlpha > 1.0)
        return r.fail(StatusCode::InvalidArgument,
                      "ema alpha outside (0, 1]");
    p.numInputs = num_inputs;
    p.numNeurons = num_neurons;
    p.refractory = static_cast<uint32_t>(refractory);
    out = std::move(cfg);
    return Status::ok();
}

// --- pack / load ----------------------------------------------------

Status
packTnn(const TnnNetwork &net, const std::string &path,
        const PackOptions &options)
{
    if (net.numLayers() == 0)
        return Status(StatusCode::InvalidArgument,
                      "packTnn: network has no layers");
    ModelInfo info;
    info.kind = "tnn";
    info.id = options.id;
    info.version = options.version;
    info.inputWidth = net.layer(0).params().numInputs;
    StmfBuilder builder;
    builder.addSection(SectionType::Meta, encodeMeta(info));
    builder.addSection(SectionType::Tnn, encodeTnn(net));
    return builder.writeFile(path);
}

Status
packNetwork(const Network &net, const std::string &path,
            const PackOptions &options, bool with_grl)
{
    if (net.numInputs() == 0)
        return Status(StatusCode::InvalidArgument,
                      "packNetwork: network has no inputs");
    ModelInfo info;
    info.kind = "plan";
    info.id = options.id;
    info.version = options.version;
    info.inputWidth = net.numInputs();
    StmfBuilder builder;
    builder.addSection(SectionType::Meta, encodeMeta(info));
    builder.addSection(SectionType::Plan, encodePlan(net));
    if (with_grl) {
        try {
            builder.addSection(SectionType::Grl,
                               encodeGrl(grl::compileToGrl(net).circuit));
        } catch (const std::exception &e) {
            return Status(StatusCode::InvalidArgument,
                          std::string("packNetwork: ") + e.what());
        }
    }
    return builder.writeFile(path);
}

Status
packLsm(const LsmModelConfig &config, const std::string &path,
        const PackOptions &options)
{
    ModelInfo info;
    info.kind = "lsm";
    info.id = options.id;
    info.version = options.version;
    info.inputWidth = config.params.numInputs;
    StmfBuilder builder;
    builder.addSection(SectionType::Meta, encodeMeta(info));
    builder.addSection(SectionType::Lsm, encodeLsm(config));
    return builder.writeFile(path);
}

namespace {

Status
widthMismatch(uint64_t meta, uint64_t payload)
{
    return Status(StatusCode::FailedPrecondition,
                  "meta input width " + std::to_string(meta) +
                      " does not match payload width " +
                      std::to_string(payload),
                  "section meta");
}

Status
smokeFailed(const char *what)
{
    return Status(StatusCode::FailedPrecondition,
                  std::string("smoke evaluation failed: ") + what);
}

} // namespace

Status
loadModel(const std::string &path, LoadMode mode, LoadedModel &out)
{
    StmfFile file;
    ST_RETURN_IF_ERROR(StmfFile::open(path, mode, file));

    LoadedModel loaded;
    ST_RETURN_IF_ERROR(decodeMeta(file, loaded.info));
    loaded.info.fileCrc = file.fileCrc();
    loaded.info.fileBytes = file.fileBytes();
    loaded.info.mode = file.mode();
    loaded.info.path = path;
    const Volley probe(loaded.info.inputWidth, Time(0));

    if (loaded.info.kind == "tnn") {
        auto net = std::make_shared<TnnNetwork>();
        ST_RETURN_IF_ERROR(decodeTnn(file, *net));
        if (net->layer(0).params().numInputs != loaded.info.inputWidth)
            return widthMismatch(loaded.info.inputWidth,
                                 net->layer(0).params().numInputs);
        try {
            (void)net->process(probe);
        } catch (const std::exception &e) {
            return smokeFailed(e.what());
        }
        loaded.tnn = std::move(net);
    } else if (loaded.info.kind == "plan") {
        auto plan = std::make_shared<PlanModel>();
        ST_RETURN_IF_ERROR(decodePlan(file, *plan));
        if (plan->numInputs() != loaded.info.inputWidth)
            return widthMismatch(loaded.info.inputWidth,
                                 plan->numInputs());
        try {
            EvalScratch scratch;
            std::vector<Time> outputs;
            plan->evaluate(probe, scratch, outputs);
        } catch (const std::exception &e) {
            return smokeFailed(e.what());
        }
        // A GRL netlist riding along is part of the artifact: a model
        // is only publishable if every payload it carries validates.
        if (file.hasSection(SectionType::Grl)) {
            grl::Circuit circuit(0);
            ST_RETURN_IF_ERROR(decodeGrl(file, circuit));
        }
        loaded.plan = std::move(plan);
    } else { // "lsm" — decodeMeta admits no other kind
        auto config = std::make_shared<LsmModelConfig>();
        ST_RETURN_IF_ERROR(decodeLsm(file, *config));
        if (config->params.numInputs != loaded.info.inputWidth)
            return widthMismatch(loaded.info.inputWidth,
                                 config->params.numInputs);
        try {
            Reservoir reservoir(config->params);
            reservoir.runVolley(probe, config->stepsPerVolley);
        } catch (const std::exception &e) {
            return smokeFailed(e.what());
        }
        loaded.lsm = std::move(config);
    }
    out = std::move(loaded);
    return Status::ok();
}

} // namespace st::model
