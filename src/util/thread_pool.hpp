/**
 * @file
 * Work-stealing thread pool for batch-parallel volley processing.
 *
 * The paper's computation model is embarrassingly parallel at two
 * levels: neurons within a column fire independently of one another
 * (Sec. IV's SRM0 bank), and distinct input volleys in a stream are
 * independent by construction. ThreadPool is the shared substrate for
 * both: a fixed set of workers, one task deque per worker, and
 * stealing from the front of a victim's deque when a worker's own
 * deque runs dry.
 *
 * Determinism contract: parallelFor() partitions [begin, end) into a
 * fixed chunk layout that depends only on the range, the grain and the
 * runner cap — never on scheduling. Callers that write result[i] from
 * body(i) therefore produce bit-identical output for any thread count,
 * which is what the TNN batch APIs (TnnNetwork::processBatch,
 * Network::evaluateBatch, Column::trainBatch) build their "parallel ==
 * serial" guarantee on.
 */

#ifndef ST_UTIL_THREAD_POOL_HPP
#define ST_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace st {

/**
 * A fixed-size work-stealing thread pool.
 *
 * A pool of size 0 is valid and degenerates to inline execution, so
 * single-core hosts pay no synchronization cost. Tasks posted to the
 * pool must not block on other pool tasks; parallelFor() is safe to
 * nest because a nested call on a worker thread runs inline.
 */
class ThreadPool
{
  public:
    /** A unit of queued work. */
    using Task = std::function<void()>;

    /** Spawn @p nthreads workers (0 means run everything inline). */
    explicit ThreadPool(size_t nthreads);

    /**
     * Stops the workers. Tasks still queued (not yet started) are
     * destroyed unexecuted; parallelFor() callers never observe this
     * because they return only after every chunk has run.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads (callers add one more lane of work). */
    size_t size() const { return workers_.size(); }

    /**
     * Queue a fire-and-forget task. With no workers the task runs
     * inline before post() returns.
     */
    void post(Task task);

    /**
     * Run body(i) for every i in [begin, end), splitting the range
     * into chunks of at least @p grain indices. The caller
     * participates, so up to size() + 1 chunks execute concurrently;
     * @p max_runners > 0 caps that (1 forces a plain serial loop).
     * Returns once every index has run; the first exception thrown by
     * @p body is rethrown here.
     *
     * The chunk layout is a pure function of the arguments, so code
     * whose iterations are independent gets bit-identical results for
     * every thread count. Nested calls from a worker thread run
     * inline (serially) to keep the pool deadlock-free.
     */
    void parallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t)> &body,
                     size_t max_runners = 0);

    /**
     * The process-wide pool used by the batch APIs: sized to
     * defaultThreads() - 1 workers (at least 1), created on first use.
     */
    static ThreadPool &shared();

    /**
     * Default worker-lane count: the ST_NUM_THREADS environment
     * variable if set to a positive integer, else the hardware
     * concurrency (at least 1).
     */
    static size_t defaultThreads();

    /** True iff the calling thread is a pool worker. */
    static bool onWorkerThread();

    /**
     * True while the calling thread is executing inside a parallel
     * construct — a parallelFor() chunk on the calling thread, or a
     * TaskGraph drain. Nested parallelFor() calls from such a region
     * run inline: the outer construct already owns the pool's lanes,
     * so posting inner chunks would only queue no-op stubs behind the
     * outer work (the worker threads are covered by onWorkerThread()).
     */
    static bool inParallelRegion();

    /** RAII marker for inParallelRegion() (restores on destruction). */
    class ParallelRegion
    {
      public:
        ParallelRegion();
        ~ParallelRegion();
        ParallelRegion(const ParallelRegion &) = delete;
        ParallelRegion &operator=(const ParallelRegion &) = delete;

      private:
        bool prev_;
    };

  private:
    /** One worker's deque; owners pop the back, thieves the front. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    /** Shared bookkeeping of one parallelFor() call. */
    struct ForState
    {
        std::atomic<size_t> nextChunk{0};
        std::atomic<size_t> doneChunks{0};
        size_t chunks = 0;
        size_t begin = 0;
        size_t end = 0;
        size_t chunkSize = 0;
        const std::function<void(size_t)> *body = nullptr;
        std::mutex mutex;
        std::condition_variable finished;
        std::exception_ptr error;
    };

    void workerLoop(size_t self);
    bool tryPop(size_t self, Task &out);
    static void runChunks(const std::shared_ptr<ForState> &state);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex sleepMutex_;
    std::condition_variable wake_;
    std::atomic<size_t> nextQueue_{0};
    std::atomic<size_t> pending_{0};
    std::atomic<bool> stop_{false};
};

} // namespace st

#endif // ST_UTIL_THREAD_POOL_HPP
