#include "util/stopwatch.hpp"

namespace st {

Stopwatch::Stopwatch()
{
    reset();
}

void
Stopwatch::reset()
{
    start_ = std::chrono::steady_clock::now();
}

double
Stopwatch::seconds() const
{
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start_).count();
}

double
Stopwatch::millis() const
{
    return seconds() * 1e3;
}

} // namespace st
