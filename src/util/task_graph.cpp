#include "util/task_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace st {

TaskGraph::TaskGraph(ThreadPool &pool, size_t max_runners)
    : state_(std::make_shared<State>())
{
    state_->pool = &pool;
    size_t runners = pool.size() + 1;
    if (max_runners > 0)
        runners = std::min(runners, max_runners);
    state_->maxRunners = std::max<size_t>(1, runners);
}

TaskGraph::~TaskGraph()
{
    if (waited_)
        return;
    try {
        wait();
    } catch (...) {
        // wait() already completed the graph; a task exception on the
        // no-wait teardown path has nowhere to go.
    }
}

size_t
TaskGraph::size() const
{
    std::lock_guard<std::mutex> guard(state_->mutex);
    return state_->nodes.size();
}

void
TaskGraph::State::maybeSpawnHelper(const std::shared_ptr<State> &state,
                                   std::unique_lock<std::mutex> &lock)
{
    // Helpers are pool tasks; one runner slot stays reserved for the
    // caller draining in wait(). A pool with no workers spawns none —
    // post() would otherwise run the drain loop inline mid-submit.
    const size_t helpers =
        state->runners - (state->callerDraining ? 1 : 0);
    if (state->ready.empty() || state->pool->size() == 0 ||
        helpers + 1 >= state->maxRunners) {
        return;
    }
    ++state->runners;
    lock.unlock();
    ST_OBS_ADD("pool.graph.helpers", 1);
    state->pool->post([state] { drain(state); });
    lock.lock();
}

void
TaskGraph::State::drain(const std::shared_ptr<State> &state)
{
    std::unique_lock<std::mutex> lock(state->mutex);
    for (;;) {
        if (state->ready.empty()) {
            --state->runners;
            return;
        }
        const uint32_t id = state->ready.front();
        state->ready.pop_front();
        std::function<void()> fn = std::move(state->nodes[id].fn);

        // A poisoned graph stops launching work: tasks that have not
        // started are marked finished unexecuted so the dependency
        // counters drain and wait() can return with the original
        // exception.
        if (!state->error) {
            lock.unlock();
            try {
                ST_TRACE_SPAN("pool.graph.task");
                fn();
            } catch (...) {
                lock.lock();
                if (!state->error)
                    state->error = std::current_exception();
                lock.unlock();
            }
            lock.lock();
        }

        ST_OBS_ADD("pool.graph.tasks", 1);
        state->nodes[id].finished = true;
        for (uint32_t succ : state->nodes[id].succs) {
            if (--state->nodes[succ].remaining == 0)
                state->ready.push_back(succ);
        }
        ++state->done;
        maybeSpawnHelper(state, lock);
        // Wake the waiter for both completion and fresh ready work.
        state->progress.notify_all();
    }
}

TaskGraph::Ticket
TaskGraph::submit(std::function<void()> fn, std::span<const Ticket> deps)
{
    if (waited_)
        throw std::logic_error("TaskGraph: submit after wait");
    std::unique_lock<std::mutex> lock(state_->mutex);
    const auto id = static_cast<uint32_t>(state_->nodes.size());
    // Validate before touching any graph state: a rejected submit must
    // leave no orphan node behind (wait() could never drain it).
    for (Ticket dep : deps) {
        if (dep >= id)
            throw std::out_of_range("TaskGraph: unknown dependency");
    }
    State::Node &node = state_->nodes.emplace_back();
    node.fn = std::move(fn);
    for (Ticket dep : deps) {
        // A finished dependency's succs list will never be walked
        // again, so only live dependencies contribute edges. The
        // deque gives stable references, so pushing to a dep's succs
        // cannot invalidate `node`.
        State::Node &d = state_->nodes[dep];
        if (!d.finished) {
            d.succs.push_back(id);
            ++node.remaining;
        }
    }
    if (node.remaining == 0) {
        state_->ready.push_back(id);
        State::maybeSpawnHelper(state_, lock);
    }
    return id;
}

TaskGraph::Ticket
TaskGraph::submit(std::function<void()> fn,
                  std::initializer_list<Ticket> deps)
{
    return submit(std::move(fn),
                  std::span<const Ticket>(deps.begin(), deps.size()));
}

void
TaskGraph::wait()
{
    if (waited_)
        return;
    waited_ = true;
    // Nested parallel constructs inside task bodies run inline on this
    // thread (pool workers are already covered by their own flag).
    ThreadPool::ParallelRegion region;
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->callerDraining = true;
    for (;;) {
        if (!state_->ready.empty()) {
            ++state_->runners;
            lock.unlock();
            State::drain(state_);
            lock.lock();
            continue;
        }
        if (state_->done == state_->nodes.size())
            break;
        state_->progress.wait(lock);
    }
    state_->callerDraining = false;
    if (state_->error)
        std::rethrow_exception(state_->error);
}

} // namespace st
