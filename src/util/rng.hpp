/**
 * @file
 * Seeded pseudo-random number generation for deterministic experiments.
 *
 * All stochastic components in the library (dataset generators, property
 * sweeps, STDP tie-breaking) draw from st::Rng so that every test, example
 * and benchmark is reproducible from a single 64-bit seed.
 */

#ifndef ST_UTIL_RNG_HPP
#define ST_UTIL_RNG_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace st {

/**
 * Deterministic random number generator.
 *
 * Wraps xoshiro256** (public-domain algorithm by Blackman & Vigna),
 * reimplemented here so the library has no external dependencies and
 * identical streams on every platform. Not cryptographic.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound), bound > 0; unbiased via rejection. */
    uint64_t below(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    int64_t range(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Standard normal variate (Box-Muller). */
    double gaussian();

    /** Normal variate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Pick a uniformly random element index of a non-empty container. */
    template <typename T>
    size_t
    pickIndex(const std::vector<T> &v)
    {
        return static_cast<size_t>(below(v.size()));
    }

    /** Derive an independent child generator (for parallel components). */
    Rng split();

  private:
    uint64_t s_[4];
    bool haveSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace st

#endif // ST_UTIL_RNG_HPP
