#include "util/raster.hpp"

#include <algorithm>
#include <sstream>

#include "core/algebra.hpp"

namespace st {

namespace {

Time::rep
horizonOf(std::span<const Time> volley, const RasterOptions &options)
{
    if (options.horizon > 0)
        return options.horizon;
    Time latest = maxFiniteOf(volley);
    return latest.isFinite() ? latest.value() : 0;
}

void
renderRows(std::ostringstream &os, std::span<const Time> volley,
           Time::rep horizon, const RasterOptions &options,
           size_t name_width)
{
    for (size_t i = 0; i < volley.size(); ++i) {
        std::string name = i < options.names.size()
                               ? options.names[i]
                               : std::to_string(i);
        os << "  " << name << std::string(name_width - name.size(), ' ')
           << " |";
        for (Time::rep t = 0; t <= horizon; ++t) {
            bool spike = volley[i].isFinite() && volley[i].value() == t;
            os << (spike ? options.mark : '.');
        }
        if (volley[i].isInf())
            os << "  (no spike)";
        os << '\n';
    }
}

size_t
nameWidth(size_t rows, const RasterOptions &options)
{
    size_t width = std::to_string(rows ? rows - 1 : 0).size();
    for (const std::string &n : options.names)
        width = std::max(width, n.size());
    return width;
}

void
renderAxis(std::ostringstream &os, Time::rep horizon, size_t name_width)
{
    os << "  " << std::string(name_width, ' ') << " +";
    for (Time::rep t = 0; t <= horizon; ++t)
        os << (t % 5 == 0 ? '+' : '-');
    os << "  t ->\n";
}

} // namespace

std::string
rasterPlot(std::span<const Time> volley, const RasterOptions &options)
{
    std::ostringstream os;
    Time::rep horizon = horizonOf(volley, options);
    size_t width = nameWidth(volley.size(), options);
    renderRows(os, volley, horizon, options, width);
    renderAxis(os, horizon, width);
    return os.str();
}

std::string
rasterPlot(std::span<const std::vector<Time>> volleys,
           const RasterOptions &options)
{
    std::ostringstream os;
    Time::rep horizon = options.horizon;
    if (horizon == 0) {
        for (const auto &v : volleys)
            horizon = std::max(horizon, horizonOf(v, options));
    }
    RasterOptions local = options;
    local.horizon = horizon;
    for (size_t k = 0; k < volleys.size(); ++k) {
        if (k)
            os << '\n';
        os << rasterPlot(volleys[k], local);
    }
    return os.str();
}

} // namespace st
