#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace st {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        throw std::invalid_argument("AsciiTable: empty header");
}

void
AsciiTable::addRow(const std::vector<std::string> &fields)
{
    if (fields.size() != header_.size())
        throw std::invalid_argument("AsciiTable: row arity mismatch");
    rows_.push_back(fields);
}

bool
AsciiTable::looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    if (i == s.size())
        return false;
    for (; i < s.size(); ++i) {
        char c = s[i];
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != 'e' && c != 'E' && c != '-' && c != '+' && c != '%' &&
            c != 'x') {
            return false;
        }
    }
    return true;
}

void
AsciiTable::writeTo(std::ostream &os) const
{
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto rule = [&]() {
        os << '+';
        for (size_t w : width)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string> &fields, bool align) {
        os << '|';
        for (size_t c = 0; c < fields.size(); ++c) {
            const std::string &f = fields[c];
            size_t pad = width[c] - f.size();
            bool right = align && looksNumeric(f);
            os << ' ';
            if (right)
                os << std::string(pad, ' ') << f;
            else
                os << f << std::string(pad, ' ');
            os << " |";
        }
        os << '\n';
    };

    rule();
    emit(header_, false);
    rule();
    for (const auto &row : rows_)
        emit(row, true);
    rule();
}

std::string
AsciiTable::str() const
{
    std::ostringstream os;
    writeTo(os);
    return os.str();
}

} // namespace st
