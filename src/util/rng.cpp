#include "util/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace st {

namespace {

/** splitmix64 — used only to expand the seed into xoshiro state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    if (bound == 0)
        throw std::invalid_argument("Rng::below: bound must be > 0");
    // Lemire-style rejection to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::gaussian()
{
    if (haveSpareGaussian_) {
        haveSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spareGaussian_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpareGaussian_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace st
