#include "util/csv.hpp"

#include <stdexcept>

namespace st {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header))
{
    if (header_.empty())
        throw std::invalid_argument("CsvWriter: empty header");
}

void
CsvWriter::addRow(const std::vector<std::string> &fields)
{
    if (fields.size() != header_.size())
        throw std::invalid_argument("CsvWriter: row arity mismatch");
    rows_.push_back(fields);
}

std::string
CsvWriter::escape(const std::string &field)
{
    bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeTo(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &fields) {
        for (size_t i = 0; i < fields.size(); ++i) {
            if (i)
                os << ',';
            os << escape(fields[i]);
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
CsvWriter::str() const
{
    std::ostringstream os;
    writeTo(os);
    return os.str();
}

} // namespace st
