/**
 * @file
 * Dependency-tracking task graph over the shared thread pool.
 *
 * parallelFor() models one barriered stage: nothing after the call
 * starts until every index has run. The pipelined batch engine needs
 * the opposite shape — layer N+1 of volley block B must be free to run
 * while layer N of block B+1 is still in flight — which is a dataflow
 * dependency, not a barrier. TaskGraph is that primitive: submit()
 * hands in a task plus the tickets it depends on, the graph posts each
 * task to the pool the moment its last dependency finishes, and wait()
 * has the caller drain ready tasks alongside the workers until the
 * whole graph has run.
 *
 * Scheduling is work-conserving but unordered: a task's *start* obeys
 * its dependency edges and nothing else. Callers that need
 * deterministic output therefore write disjoint state per task and do
 * any order-sensitive reduction after wait() — exactly the contract
 * the batch engine's epoch-boundary STDP merge follows.
 */

#ifndef ST_UTIL_TASK_GRAPH_HPP
#define ST_UTIL_TASK_GRAPH_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>

#include "util/thread_pool.hpp"

namespace st {

/**
 * A one-shot dataflow graph of tasks executed on a ThreadPool.
 *
 * Usage: submit() every node (dependencies must already have tickets,
 * so the graph is acyclic by construction), then wait() exactly once.
 * Tasks may finish before wait() — submission alone makes a
 * dependency-free task eligible to run on the pool's workers.
 *
 * Tasks must not block on other tasks of the same graph (the pool has
 * a fixed worker count; use a dependency edge instead). A task that
 * throws poisons the graph: its exception is rethrown by wait(), and
 * every task that has not *started* by then is skipped — including
 * tasks whose dependencies all succeeded, since their outputs feed a
 * result the caller will never see.
 *
 * With no pool workers (or max_runners == 1) every task runs inline on
 * the caller inside wait(), FIFO over the ready set (a task becomes
 * ready at submission or when its last dependency finishes).
 */
class TaskGraph
{
  public:
    /** Handle to a submitted task, usable as a dependency. */
    using Ticket = uint32_t;

    /**
     * Build a graph over @p pool. @p max_runners > 0 caps concurrent
     * task execution, counting the caller draining in wait() as one
     * runner (0 = pool.size() + 1, like parallelFor).
     */
    explicit TaskGraph(ThreadPool &pool = ThreadPool::shared(),
                       size_t max_runners = 0);

    /** Waits for in-flight tasks (without rethrowing) if wait() was
     *  never called, so task lambdas never outlive their captures. */
    ~TaskGraph();

    TaskGraph(const TaskGraph &) = delete;
    TaskGraph &operator=(const TaskGraph &) = delete;

    /** Submit a task that runs after every ticket in @p deps. */
    Ticket submit(std::function<void()> fn,
                  std::span<const Ticket> deps = {});

    /** Initializer-list convenience: g.submit(fn, {a, b}). */
    Ticket submit(std::function<void()> fn,
                  std::initializer_list<Ticket> deps);

    /**
     * Run ready tasks on the calling thread until the graph is done,
     * then rethrow the first task exception, if any. Call once.
     */
    void wait();

    /** Tasks submitted so far. */
    size_t size() const;

  private:
    /**
     * Shared graph state, kept alive by shared_ptr so pool helper
     * tasks that outlive the TaskGraph object (e.g. a helper that
     * finds the ready deque empty just as wait() returns) still touch
     * valid memory.
     */
    struct State
    {
        ThreadPool *pool = nullptr;
        size_t maxRunners = 1;

        std::mutex mutex;
        std::condition_variable progress;
        struct Node
        {
            std::function<void()> fn;
            uint32_t remaining = 0;      //!< unfinished dependencies
            bool finished = false;       //!< ran (or was skipped)
            std::vector<uint32_t> succs; //!< dependents to release
        };
        std::deque<Node> nodes;      //!< stable storage, index == Ticket
        std::deque<uint32_t> ready;  //!< runnable, not yet started
        size_t done = 0;             //!< finished (or skipped) nodes
        size_t runners = 0;          //!< drain loops alive (incl. caller)
        bool callerDraining = false; //!< wait() occupies a runner slot
        std::exception_ptr error;    //!< first task exception

        /** Pop-execute loop shared by pool helpers and wait(). */
        static void drain(const std::shared_ptr<State> &state);
        /** Post another pool helper if capacity and work allow. */
        static void maybeSpawnHelper(const std::shared_ptr<State> &state,
                                     std::unique_lock<std::mutex> &lock);
    };

    std::shared_ptr<State> state_;
    bool waited_ = false;
};

} // namespace st

#endif // ST_UTIL_TASK_GRAPH_HPP
