/**
 * @file
 * Build/version string for health snapshots and report artifacts.
 *
 * The value comes from the CMake project() version via the ST_VERSION
 * compile definition (set PUBLIC on st_obs, so every target agrees);
 * the "dev" fallback keeps ad-hoc compiles (IDE single-TU builds)
 * linking.
 */

#ifndef ST_UTIL_VERSION_HPP
#define ST_UTIL_VERSION_HPP

namespace st {

#ifndef ST_VERSION
#define ST_VERSION "dev"
#endif

inline constexpr const char *kVersionString = ST_VERSION;

} // namespace st

#endif // ST_UTIL_VERSION_HPP
