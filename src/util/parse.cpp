#include "util/parse.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/obs.hpp"

namespace st {

namespace {

/** Warn + account one rejected env value, then the caller falls back. */
void
rejectEnv(const char *name, const char *value, const char *why)
{
    std::fprintf(stderr,
                 "st: ignoring %s='%s' (%s); using the default\n", name,
                 value, why);
    ST_OBS_ADD("env.parse_rejected", 1);
}

} // namespace

std::optional<uint64_t>
parseUint64Strict(std::string_view tok)
{
    if (tok.empty() ||
        tok.find_first_not_of("0123456789") != std::string_view::npos)
        return std::nullopt;
    uint64_t v = 0;
    for (char c : tok) {
        const uint64_t digit = static_cast<uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return std::nullopt; // overflow
        v = v * 10 + digit;
    }
    return v;
}

std::optional<double>
parseDoubleStrict(std::string_view tok)
{
    if (tok.empty())
        return std::nullopt;
    const std::string copy(tok); // stod needs a terminated buffer
    try {
        size_t pos = 0;
        const double v = std::stod(copy, &pos);
        if (pos != copy.size() || !std::isfinite(v))
            return std::nullopt;
        return v;
    } catch (const std::exception &) {
        return std::nullopt;
    }
}

uint64_t
envUint(const char *name, uint64_t fallback, uint64_t min, uint64_t max)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr)
        return fallback;
    const std::optional<uint64_t> v = parseUint64Strict(raw);
    if (!v) {
        rejectEnv(name, raw, "not an unsigned integer");
        return fallback;
    }
    if (*v < min || *v > max) {
        rejectEnv(name, raw, "out of range");
        return fallback;
    }
    return *v;
}

double
envDouble(const char *name, double fallback, double min, double max)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr)
        return fallback;
    const std::optional<double> v = parseDoubleStrict(raw);
    if (!v) {
        rejectEnv(name, raw, "not a finite number");
        return fallback;
    }
    if (*v < min || *v > max) {
        rejectEnv(name, raw, "out of range");
        return fallback;
    }
    return *v;
}

std::string
envString(const char *name, std::string fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr)
        return fallback;
    if (*raw == '\0') {
        rejectEnv(name, raw, "empty value");
        return fallback;
    }
    return raw;
}

} // namespace st
