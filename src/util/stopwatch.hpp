/**
 * @file
 * Wall-clock stopwatch for coarse timing in examples.
 */

#ifndef ST_UTIL_STOPWATCH_HPP
#define ST_UTIL_STOPWATCH_HPP

#include <chrono>

namespace st {

/** Simple monotonic stopwatch (started on construction). */
class Stopwatch
{
  public:
    Stopwatch();

    /** Restart the clock. */
    void reset();

    /** Elapsed seconds since construction or last reset(). */
    double seconds() const;

    /** Elapsed milliseconds. */
    double millis() const;

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace st

#endif // ST_UTIL_STOPWATCH_HPP
