/**
 * @file
 * Strict scalar parsing and hardened environment-variable access.
 *
 * PR 5 hardened the text loaders with strict all-or-nothing token
 * parsers; this header lifts those parsers out of the loaders'
 * anonymous namespaces so every other input boundary — environment
 * variables first among them — applies the same rules. "Strict" means
 * the whole token must convert and the value must be in range: "8x",
 * "", "0x10", and "1e99" are rejects, never silent truncations.
 *
 * The env* helpers are the configuration boundary of the runtime
 * (ST_NUM_THREADS, ST_TRACE, ST_SERVE_*). A malformed value must not
 * silently fall back — an operator who typo'd ST_SERVE_DEADLINE_MS
 * deserves to find out — so every reject warns once on stderr and
 * ticks the env.parse_rejected counter before the fallback applies.
 */

#ifndef ST_UTIL_PARSE_HPP
#define ST_UTIL_PARSE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace st {

/**
 * Strict unsigned parse: nullopt unless @p tok is entirely decimal
 * digits and fits in uint64. No sign, no hex, no leading '+'.
 */
std::optional<uint64_t> parseUint64Strict(std::string_view tok);

/**
 * Strict double parse: nullopt unless the whole token converts and
 * the value is finite (inf/nan spellings are rejected).
 */
std::optional<double> parseDoubleStrict(std::string_view tok);

/**
 * Read an unsigned env var. Unset returns @p fallback silently; a set
 * but malformed or out-of-[min,max] value warns on stderr, ticks
 * env.parse_rejected, and returns @p fallback.
 */
uint64_t envUint(const char *name, uint64_t fallback, uint64_t min = 0,
                 uint64_t max = UINT64_MAX);

/** envUint's floating-point sibling (closed range [min, max]). */
double envDouble(const char *name, double fallback, double min,
                 double max);

/**
 * Read a string env var (e.g. a file path). Unset returns @p fallback
 * silently; set-but-empty is a reject (warn + metric + fallback) —
 * `ST_TRACE=` almost certainly meant to name a file.
 */
std::string envString(const char *name, std::string fallback = "");

} // namespace st

#endif // ST_UTIL_PARSE_HPP
