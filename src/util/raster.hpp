/**
 * @file
 * ASCII raster plots of spike volleys and traces.
 *
 * Renders the classic neuroscience raster: one row per line, time on
 * the horizontal axis, '|' at each spike. Used by the examples to show
 * volleys and by debugging sessions to eyeball traces.
 */

#ifndef ST_UTIL_RASTER_HPP
#define ST_UTIL_RASTER_HPP

#include <span>
#include <string>
#include <vector>

#include "core/time.hpp"

namespace st {

/** Options for raster rendering. */
struct RasterOptions
{
    /** Right edge of the plot; 0 = end at the latest spike. */
    Time::rep horizon = 0;
    /** Optional row names (defaults to line indices). */
    std::vector<std::string> names;
    /** Character marking a spike. */
    char mark = '|';
};

/** Render one volley as a raster plot (one row per line). */
std::string rasterPlot(std::span<const Time> volley,
                       const RasterOptions &options = {});

/**
 * Render several volleys stacked with blank separators (e.g., the
 * per-layer volleys of a TNN forward pass).
 */
std::string rasterPlot(std::span<const std::vector<Time>> volleys,
                       const RasterOptions &options = {});

} // namespace st

#endif // ST_UTIL_RASTER_HPP
