/**
 * @file
 * ASCII table pretty-printer for example/benchmark console output.
 */

#ifndef ST_UTIL_TABLE_HPP
#define ST_UTIL_TABLE_HPP

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace st {

/**
 * Fixed-column ASCII table.
 *
 * Columns are sized to their widest cell; numeric-looking cells are
 * right-aligned, everything else left-aligned. Used by the benchmark
 * harnesses to print the per-figure result series the paper reproduction
 * is judged on.
 */
class AsciiTable
{
  public:
    /** Create a table with the given column header. */
    explicit AsciiTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(const std::vector<std::string> &fields);

    /** Convenience overload formatting arbitrary streamable values. */
    template <typename... Ts>
    void
    row(const Ts &...values)
    {
        std::vector<std::string> fields;
        fields.reserve(sizeof...(values));
        (fields.push_back(format(values)), ...);
        addRow(fields);
    }

    /** Render the table. */
    void writeTo(std::ostream &os) const;

    /** Render to a string. */
    std::string str() const;

  private:
    template <typename T>
    static std::string
    format(const T &value)
    {
        std::ostringstream os;
        os << value;
        return os.str();
    }

    static bool looksNumeric(const std::string &s);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace st

#endif // ST_UTIL_TABLE_HPP
