#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/obs.hpp"
#include "util/parse.hpp"

namespace st {

namespace {

/** Set for the lifetime of a worker thread's loop. */
thread_local bool tls_on_worker = false;

/** Set while the thread executes inside a parallel construct. */
thread_local bool tls_in_parallel = false;

} // namespace

ThreadPool::ThreadPool(size_t nthreads)
{
    queues_.reserve(nthreads);
    for (size_t i = 0; i < nthreads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(nthreads);
    for (size_t i = 0; i < nthreads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> guard(sleepMutex_);
        stop_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::post(Task task)
{
    if (queues_.empty()) {
        task();
        return;
    }
    ST_OBS_ADD("pool.posted", 1);
    size_t q = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
               queues_.size();
    {
        std::lock_guard<std::mutex> guard(queues_[q]->mutex);
        queues_[q]->tasks.push_back(std::move(task));
    }
    {
        // Publish under sleepMutex_ so a worker between its predicate
        // check and wait() cannot miss the notification.
        std::lock_guard<std::mutex> guard(sleepMutex_);
        pending_.fetch_add(1, std::memory_order_release);
    }
    wake_.notify_one();
}

bool
ThreadPool::tryPop(size_t self, Task &out)
{
    {
        WorkerQueue &own = *queues_[self];
        std::lock_guard<std::mutex> guard(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.back());
            own.tasks.pop_back();
            pending_.fetch_sub(1, std::memory_order_acq_rel);
            return true;
        }
    }
    for (size_t k = 1; k < queues_.size(); ++k) {
        WorkerQueue &victim = *queues_[(self + k) % queues_.size()];
        std::lock_guard<std::mutex> guard(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            pending_.fetch_sub(1, std::memory_order_acq_rel);
            ST_OBS_ADD("pool.steals", 1);
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(size_t self)
{
    tls_on_worker = true;
    // Per-worker busy-time counter: the name is built once per worker
    // thread, then every task pays one clock pair and one relaxed add.
    ST_OBS_ONLY(
        obs::Counter &busy = obs::MetricsRegistry::instance().counter(
            "pool.worker" + std::to_string(self) + ".busy_ns");)
    for (;;) {
        Task task;
        if (tryPop(self, task)) {
            ST_OBS_ONLY(const uint64_t t0 = obs::traceNowNs();)
            {
                ST_TRACE_SPAN("pool.task");
                task();
            }
            ST_OBS_ONLY({
                const uint64_t dt = obs::traceNowNs() - t0;
                busy.add(dt);
                ST_OBS_ADD("pool.tasks", 1);
                ST_OBS_ADD("pool.busy_ns", dt);
            })
            continue;
        }
        ST_OBS_ADD("pool.parks", 1);
        std::unique_lock<std::mutex> lock(sleepMutex_);
        wake_.wait(lock, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        ST_OBS_ADD("pool.unparks", 1);
        if (stop_.load(std::memory_order_acquire))
            return;
    }
}

void
ThreadPool::runChunks(const std::shared_ptr<ForState> &state)
{
    for (;;) {
        size_t c = state->nextChunk.fetch_add(1,
                                              std::memory_order_relaxed);
        if (c >= state->chunks)
            return;
        size_t lo = state->begin + c * state->chunkSize;
        size_t hi = std::min(state->end, lo + state->chunkSize);
        ST_OBS_ADD("pool.chunks", 1);
        try {
            for (size_t i = lo; i < hi; ++i)
                (*state->body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> guard(state->mutex);
            if (!state->error)
                state->error = std::current_exception();
        }
        size_t done = state->doneChunks.fetch_add(
                          1, std::memory_order_acq_rel) +
                      1;
        if (done == state->chunks) {
            // Take the lock so the waiter cannot sleep between its
            // predicate check and our notify.
            std::lock_guard<std::mutex> guard(state->mutex);
            state->finished.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t)> &body,
                        size_t max_runners)
{
    if (begin >= end)
        return;
    size_t n = end - begin;
    if (grain == 0)
        grain = 1;
    size_t runners = size() + 1;
    if (max_runners > 0)
        runners = std::min(runners, max_runners);
    if (runners <= 1 || n <= grain || onWorkerThread() ||
        inParallelRegion()) {
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    ST_TRACE_SPAN("pool.parallel_for");
    ST_OBS_ADD("pool.parallel_for.calls", 1);

    // Fixed chunk layout: ~4 chunks per runner for stealing slack,
    // never below the grain. Depends only on the arguments, so the
    // work partition (hence any order-free result) is deterministic.
    size_t chunk = std::max(grain, (n + 4 * runners - 1) / (4 * runners));
    size_t chunks = (n + chunk - 1) / chunk;
    runners = std::min(runners, chunks);

    auto state = std::make_shared<ForState>();
    state->chunks = chunks;
    state->begin = begin;
    state->end = end;
    state->chunkSize = chunk;
    state->body = &body;

    for (size_t r = 1; r < runners; ++r)
        post([state] { runChunks(state); });
    {
        // The caller's own chunk walk is a parallel region: nested
        // parallelFor() calls from the body run inline instead of
        // posting chunk stubs the busy workers would drain as no-ops.
        ParallelRegion region;
        runChunks(state);
    }

    std::unique_lock<std::mutex> lock(state->mutex);
    state->finished.wait(lock, [&state] {
        return state->doneChunks.load(std::memory_order_acquire) ==
               state->chunks;
    });
    if (state->error)
        std::rethrow_exception(state->error);
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool(std::max<size_t>(1, defaultThreads() - 1));
    return pool;
}

size_t
ThreadPool::defaultThreads()
{
    static size_t cached = [] {
        const unsigned hw = std::thread::hardware_concurrency();
        const uint64_t fallback = hw > 0 ? hw : 1;
        // Strict parse: a garbage or zero ST_NUM_THREADS warns and
        // falls back instead of silently running single-lane.
        return static_cast<size_t>(
            envUint("ST_NUM_THREADS", fallback, 1, 65536));
    }();
    return cached;
}

bool
ThreadPool::onWorkerThread()
{
    return tls_on_worker;
}

bool
ThreadPool::inParallelRegion()
{
    return tls_in_parallel;
}

ThreadPool::ParallelRegion::ParallelRegion() : prev_(tls_in_parallel)
{
    tls_in_parallel = true;
}

ThreadPool::ParallelRegion::~ParallelRegion()
{
    tls_in_parallel = prev_;
}

} // namespace st
