/**
 * @file
 * Minimal CSV writer used by benchmarks and examples to emit result series.
 */

#ifndef ST_UTIL_CSV_HPP
#define ST_UTIL_CSV_HPP

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace st {

/**
 * Streaming CSV writer.
 *
 * Quotes fields containing separators or quotes per RFC 4180. Rows are
 * buffered and flushed with writeTo(), so a writer can also be used purely
 * in memory (e.g., in tests).
 */
class CsvWriter
{
  public:
    /** Create a writer with the given column header. */
    explicit CsvWriter(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(const std::vector<std::string> &fields);

    /** Convenience overload formatting arbitrary streamable values. */
    template <typename... Ts>
    void
    row(const Ts &...values)
    {
        std::vector<std::string> fields;
        fields.reserve(sizeof...(values));
        (fields.push_back(format(values)), ...);
        addRow(fields);
    }

    /** Number of data rows currently buffered. */
    size_t rowCount() const { return rows_.size(); }

    /** Serialize header + rows to a stream. */
    void writeTo(std::ostream &os) const;

    /** Serialize to a string (mainly for tests). */
    std::string str() const;

  private:
    template <typename T>
    static std::string
    format(const T &value)
    {
        std::ostringstream os;
        os << value;
        return os.str();
    }

    static std::string escape(const std::string &field);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace st

#endif // ST_UTIL_CSV_HPP
