#include "serve/config.hpp"

#include "util/parse.hpp"

namespace st::serve {

ServeConfig
ServeConfig::fromEnv()
{
    ServeConfig cfg;
    cfg.window = envUint("ST_SERVE_WINDOW", cfg.window, 1, 1u << 20);
    cfg.maxSessions =
        envUint("ST_SERVE_MAX_SESSIONS", cfg.maxSessions, 1, 1u << 20);
    cfg.ingressCapacity =
        envUint("ST_SERVE_INGRESS", cfg.ingressCapacity, 1, 1u << 20);
    cfg.egressCapacity =
        envUint("ST_SERVE_EGRESS", cfg.egressCapacity, 1, 1u << 20);
    cfg.batchMax =
        envUint("ST_SERVE_BATCH_MAX", cfg.batchMax, 1, 1u << 16);
    cfg.deadlineMs =
        envUint("ST_SERVE_DEADLINE_MS", cfg.deadlineMs, 1, 86400000);
    cfg.deadlineMaxMs = envUint("ST_SERVE_DEADLINE_MAX_MS",
                                cfg.deadlineMaxMs, 1, 86400000);
    cfg.idleTimeoutMs = envUint("ST_SERVE_IDLE_TIMEOUT_MS",
                                cfg.idleTimeoutMs, 1, 86400000);
    cfg.drainDeadlineMs =
        envUint("ST_SERVE_DRAIN_MS", cfg.drainDeadlineMs, 1, 86400000);
    cfg.watchdogStallMs = envUint("ST_SERVE_WATCHDOG_MS",
                                  cfg.watchdogStallMs, 1, 86400000);
    cfg.retryAfterMs =
        envUint("ST_SERVE_RETRY_AFTER_MS", cfg.retryAfterMs, 1,
                86400000);
    cfg.retryAfterMaxMs =
        envUint("ST_SERVE_RETRY_AFTER_MAX_MS", cfg.retryAfterMaxMs, 1,
                86400000);
    cfg.offenderDecayMs = envUint("ST_SERVE_OFFENDER_DECAY_MS",
                                  cfg.offenderDecayMs, 1, 86400000);
    cfg.maxGapWindows =
        envUint("ST_SERVE_MAX_GAP_WINDOWS", cfg.maxGapWindows, 0,
                1u << 20);
    cfg.nthreads = envUint("ST_SERVE_THREADS", cfg.nthreads, 0, 65536);
    cfg.healthTopK =
        envUint("ST_SERVE_HEALTH_TOPK", cfg.healthTopK, 0, 4096);
    return cfg;
}

} // namespace st::serve
