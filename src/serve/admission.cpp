#include "serve/admission.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace st::serve {

AdmissionController::AdmissionController(const ServeConfig &config)
    : config_(config)
{
}

AdmissionController::Decision
AdmissionController::tryAdmit(const std::string &client_key,
                              uint64_t now_ms, uint64_t active,
                              bool draining)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!draining && active < config_.maxSessions) {
        return Decision{true, 0, ""};
    }

    // Refused: compute this client's hint, then double its penalty so
    // a reconnect storm backs itself off.
    Decision d;
    d.admit = false;
    d.reason = draining ? "draining" : "capacity";
    auto [it, inserted] = offenders_.try_emplace(
        client_key, Offender{config_.retryAfterMs, now_ms});
    if (!inserted) {
        it->second.penaltyMs = std::min(
            config_.retryAfterMaxMs, it->second.penaltyMs * 2);
        it->second.lastRejectMs = now_ms;
    }
    d.retryAfterMs = it->second.penaltyMs;
    ST_OBS_ADD("serve.shed.sessions", 1);
    return d;
}

void
AdmissionController::decay(uint64_t now_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = offenders_.begin(); it != offenders_.end();) {
        Offender &o = it->second;
        while (o.penaltyMs > config_.retryAfterMs &&
               now_ms - o.lastRejectMs >= config_.offenderDecayMs) {
            o.penaltyMs = std::max(config_.retryAfterMs,
                                   o.penaltyMs / 2);
            o.lastRejectMs += config_.offenderDecayMs;
        }
        if (o.penaltyMs <= config_.retryAfterMs &&
            now_ms - o.lastRejectMs >= config_.offenderDecayMs)
            it = offenders_.erase(it);
        else
            ++it;
    }
}

size_t
AdmissionController::offenderCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return offenders_.size();
}

} // namespace st::serve
