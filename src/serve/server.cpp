#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <sstream>

#include "core/eval_plan.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"
#include "util/version.hpp"

namespace st::serve {

namespace {

/** Signal flag polled by the reaper (handler-safe: one atomic store). */
std::atomic<StreamServer *> g_signal_server{nullptr};
std::atomic<bool> g_stop_requested{false};
std::atomic<bool> g_reload_requested{false};

void
onStopSignal(int)
{
    g_stop_requested.store(true, std::memory_order_release);
}

void
onReloadSignal(int)
{
    g_reload_requested.store(true, std::memory_order_release);
}

/** Boot-model identity when the server is constructed from a bare
 *  ServeModel instead of an STMF file (tests, text-format daemons). */
model::ModelInfo
builtinInfo(const ServeModel &m)
{
    model::ModelInfo info;
    info.kind = m.name();
    info.id = "builtin";
    info.version = 1;
    info.inputWidth = m.numInputs();
    return info;
}

/** Whole-file CRC32C as 8 hex digits (the health checksum field). */
std::string
crcHex(uint32_t crc)
{
    char buf[9];
    std::snprintf(buf, sizeof buf, "%08x", crc);
    return buf;
}

/** Deterministic chaos stream id for (session, seq). */
uint64_t
chaosStream(uint64_t session, uint64_t seq)
{
    return (session << 32) ^ (seq * 0x9e3779b97f4a7c15ULL);
}

} // namespace

uint64_t
steadyNowMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

StreamServer::StreamServer(std::unique_ptr<ServeModel> model,
                           ServeConfig config)
    : config_(config), registry_([&model] {
          std::shared_ptr<ServeModel> shared(std::move(model));
          model::ModelInfo info = builtinInfo(*shared);
          return ModelRegistry(std::move(shared), std::move(info));
      }()),
      admission_(config)
{
    startedAtMs_ = steadyNowMs();
}

StreamServer::StreamServer(std::shared_ptr<ServeModel> model,
                           model::ModelInfo info, ServeConfig config)
    : config_(config),
      registry_(std::move(model), std::move(info)), admission_(config)
{
    startedAtMs_ = steadyNowMs();
}

StreamServer::~StreamServer()
{
    if (running_.load(std::memory_order_acquire)) {
        requestStop();
        waitDrained();
    }
    if (g_signal_server.load(std::memory_order_acquire) == this)
        installSignalHandlers(nullptr);
}

void
StreamServer::start()
{
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true))
        return;
    stopThreads_.store(false, std::memory_order_release);
    batcher_ = std::thread([this] { batcherLoop(); });
    watchdog_ = std::thread([this] { watchdogLoop(); });
    reaper_ = std::thread([this] { reaperLoop(); });
}

void
StreamServer::notifyWork()
{
    {
        std::lock_guard<std::mutex> lock(workMutex_);
        workFlag_ = true;
    }
    workCv_.notify_all();
}

StreamServer::OpenResult
StreamServer::openSession(const std::string &client_key)
{
    const uint64_t now = steadyNowMs();
    OpenResult result;
    std::shared_ptr<Session> session;
    {
        // Admission check and insertion under one lock: two
        // concurrent opens at maxSessions-1 must not both pass the
        // count check and overshoot the bound.
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        const AdmissionController::Decision d = admission_.tryAdmit(
            client_key, now, sessions_.size(),
            draining_.load(std::memory_order_acquire));
        if (!d.admit) {
            result.retryAfterMs = d.retryAfterMs;
            result.reason = d.reason;
            return result;
        }
        const uint64_t id = nextSessionId_++;
        session = std::make_shared<Session>(
            id, config_, registry_.current()->model->numInputs(),
            [this] { notifyWork(); });
        sessions_.emplace(id, session);
        ST_OBS_GAUGE_SET("serve.sessions.active", sessions_.size());
    }
    ST_OBS_ADD("serve.sessions.opened", 1);
    obs::FlightRecorder::instance().record("session.open",
                                           session->id(), 0,
                                           client_key);
    result.session = std::move(session);
    return result;
}

size_t
StreamServer::activeSessions() const
{
    std::lock_guard<std::mutex> lock(sessionsMutex_);
    return sessions_.size();
}

void
StreamServer::requestStop()
{
    bool expected = false;
    if (!draining_.compare_exchange_strong(expected, true))
        return;
    drainStartedMs_ = steadyNowMs();
    ST_OBS_ADD("serve.drain.requested", 1);
    obs::FlightRecorder::instance().record("drain.request", 0, 0);
    notifyWork();
}

bool
StreamServer::waitDrained(uint64_t timeout_ms)
{
    if (!running_.load(std::memory_order_acquire))
        return true;
    const uint64_t budget =
        timeout_ms == 0 ? config_.drainDeadlineMs : timeout_ms;
    const uint64_t deadline = steadyNowMs() + budget;
    while (activeSessions() > 0 && steadyNowMs() < deadline) {
        notifyWork();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (activeSessions() > 0) {
        // Past the deadline: the contract is a bounded shutdown, so
        // the stragglers are force-closed and accounted.
        drainedCleanly_.store(0, std::memory_order_release);
        std::vector<std::shared_ptr<Session>> leftover;
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            for (auto &[id, s] : sessions_)
                leftover.push_back(s);
        }
        const uint64_t now = steadyNowMs();
        ST_LOG_WARN("serve.drain",
                    "drain deadline exceeded; force-closing " +
                        std::to_string(leftover.size()) +
                        " session(s)");
        for (auto &s : leftover) {
            ST_OBS_ADD("serve.drain.forced", 1);
            obs::FlightRecorder::instance().record("drain.forced",
                                                   s->id(), 0);
            s->forceClose("drain deadline exceeded", now);
        }
        notifyWork();
        const uint64_t grace = steadyNowMs() + 1000;
        while (activeSessions() > 0 && steadyNowMs() < grace)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stopThreads_.store(true, std::memory_order_release);
    notifyWork();
    if (batcher_.joinable())
        batcher_.join();
    if (watchdog_.joinable())
        watchdog_.join();
    if (reaper_.joinable())
        reaper_.join();
    running_.store(false, std::memory_order_release);
    const bool clean =
        drainedCleanly_.load(std::memory_order_acquire) != 0;
    obs::FlightRecorder::instance().record("drain.done", clean ? 1 : 0,
                                           0);
    return clean;
}

bool
StreamServer::ready() const
{
    return running_.load(std::memory_order_acquire) &&
           !draining_.load(std::memory_order_acquire) &&
           !watchdogTripped_.load(std::memory_order_acquire);
}

void
StreamServer::enableChaos(const fault::FaultSpec &spec)
{
    chaos_ = std::make_unique<fault::FaultInjector>(spec);
    ST_OBS_ADD("serve.chaos.enabled", 1);
}

void
StreamServer::installSignalHandlers(StreamServer *server)
{
    g_signal_server.store(server, std::memory_order_release);
    g_stop_requested.store(false, std::memory_order_release);
    g_reload_requested.store(false, std::memory_order_release);
    struct sigaction sa = {};
    if (server != nullptr) {
        sa.sa_handler = onStopSignal;
        sigemptyset(&sa.sa_mask);
        // No SA_RESTART: a blocking stdin read returns EINTR so the
        // pipe transport notices the drain promptly.
        sa.sa_flags = 0;
    } else {
        sa.sa_handler = SIG_DFL;
    }
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    // SIGHUP = "reload your model", the daemon-config convention. The
    // handler only flips a flag; the reaper runs the actual reload so
    // the signal context stays async-safe.
    struct sigaction hup = {};
    if (server != nullptr) {
        hup.sa_handler = onReloadSignal;
        sigemptyset(&hup.sa_mask);
        hup.sa_flags = SA_RESTART;
    } else {
        hup.sa_handler = SIG_DFL;
    }
    sigaction(SIGHUP, &hup, nullptr);
}

void
StreamServer::setReloadHandler(std::function<Status()> handler)
{
    std::lock_guard<std::mutex> lock(reloadMutex_);
    reloadHandler_ = std::move(handler);
}

Status
StreamServer::triggerReload()
{
    std::function<Status()> handler;
    {
        std::lock_guard<std::mutex> lock(reloadMutex_);
        handler = reloadHandler_;
    }
    if (!handler)
        return Status(StatusCode::FailedPrecondition,
                      "no reload handler installed (daemon not "
                      "started with a model directory)");
    ST_OBS_ADD("model.reload.requested", 1);
    const Status status = handler();
    if (!status.isOk())
        ST_LOG_WARN("serve.reload",
                    "model reload failed; incumbent keeps serving: " +
                        status.str());
    return status;
}

void
StreamServer::sweepSessions(uint64_t now_ms)
{
    std::vector<std::shared_ptr<Session>> snapshot;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        snapshot.reserve(sessions_.size());
        for (auto &[id, s] : sessions_)
            snapshot.push_back(s);
    }
    // Session state lives in whatever model version is current when
    // the session ends; a version retired mid-session takes its state
    // with it when the last pinned batch releases the refcount.
    const std::shared_ptr<const ModelVersion> pinned =
        registry_.current();
    for (auto &s : snapshot) {
        const bool drain_all =
            draining_.load(std::memory_order_acquire);
        if (drain_all && !s->inputDone()) {
            // Draining: no more input will be read; what is queued
            // still flows, but the stream is logically ended. The
            // non-blocking form never waits on a reader mid-submit —
            // a refused seal is retried on the next sweep.
            s->endInput(now_ms, /*may_block=*/false);
        }
        if (s->finishIfDrained(now_ms)) {
            bool erased = false;
            {
                std::lock_guard<std::mutex> lock(sessionsMutex_);
                erased = sessions_.erase(s->id()) > 0;
                ST_OBS_GAUGE_SET("serve.sessions.active",
                                 sessions_.size());
            }
            if (erased) {
                pinned->model->endSession(s->id());
                ST_OBS_ADD("serve.sessions.closed", 1);
                obs::FlightRecorder::instance().record(
                    "session.close", s->id(),
                    s->stats().volleysOut);
            }
        }
    }
}

void
StreamServer::runBatch(
    std::vector<std::shared_ptr<Session>> &targets,
    std::vector<BatchItem> &items, uint64_t now_ms)
{
    ST_TRACE_SPAN("serve.batch");
    // Pin the published model version for this whole batch: a
    // concurrent swapModel() cannot retire the engine mid-batch (the
    // shared_ptr holds its refcount), and every item of one batch is
    // answered by one version. The next gather pass re-pins.
    const std::shared_ptr<const ModelVersion> pinned =
        registry_.current();
    ServeModel &model = *pinned->model;
    if (chaos_) {
        for (BatchItem &item : items) {
            std::vector<Time> &v = item.volley;
            chaos_->perturbVolley(v,
                                  chaosStream(item.session, item.seq));
        }
    }
    batchStartMs_.store(now_ms, std::memory_order_release);
    ST_OBS_ADD("serve.batches", 1);
    ST_OBS_HIST("serve.batch.size", items.size());
    // Latency stamping: the model enter/exit stamps are taken around
    // the model call that actually carried the volley — shared by the
    // whole batch on the transactional fast path, per item on the
    // stateful / retry paths — and the egress stamp right before its
    // deliver(): once a client observes a volley line, its
    // decomposition is already in the histograms.
    const auto finishOne = [&](size_t i, VolleyStamps stamps) {
        if constexpr (kLatencyEnabled) {
            stamps.ingressUs = items[i].ingressUs;
            stamps.admitUs = items[i].admitUs;
            stamps.egressUs = steadyNowUs();
            recordVolleyLatency(*targets[i], stamps);
        } else {
            (void)i;
            (void)stamps;
        }
    };
    // One item per model call; a throw poisons exactly that volley.
    const auto processOne = [&](size_t i) {
        VolleyStamps stamps;
        try {
            if constexpr (kLatencyEnabled)
                stamps.modelEnterUs = steadyNowUs();
            const std::vector<std::string> one =
                model.processBatch({&items[i], 1},
                                   config_.nthreads);
            if constexpr (kLatencyEnabled)
                stamps.modelExitUs = steadyNowUs();
            finishOne(i, stamps);
            targets[i]->deliver(items[i].seq,
                                one.empty() ? "" : one[0],
                                steadyNowMs());
        } catch (const std::exception &) {
            targets[i]->dropVolley(items[i].seq, "poisoned",
                                   steadyNowMs());
        }
    };
    if (!model.transactional()) {
        // Stateful models commit per-session state as they iterate,
        // so a whole-batch retry after a mid-batch throw would apply
        // the items before the failure twice (double-advancing
        // reservoirs and EMAs). Feed them one item per call from the
        // start: every item commits exactly once.
        for (size_t i = 0; i < items.size(); ++i)
            processOne(i);
    } else {
        bool batch_ok = true;
        VolleyStamps stamps;
        std::vector<std::string> payloads;
        try {
            if constexpr (kLatencyEnabled)
                stamps.modelEnterUs = steadyNowUs();
            payloads = model.processBatch(items, config_.nthreads);
            if constexpr (kLatencyEnabled)
                stamps.modelExitUs = steadyNowUs();
            if (payloads.size() != items.size())
                throw StatusError(Status(
                    StatusCode::Internal,
                    "model returned " +
                        std::to_string(payloads.size()) +
                        " payloads for " +
                        std::to_string(items.size()) + " items"));
        } catch (const std::exception &e) {
            batch_ok = false;
            ST_OBS_ADD("serve.batch.panic", 1);
            obs::FlightRecorder::instance().record(
                "batch.panic", items.size(), 0, e.what());
            ST_LOG_WARN("serve.batch",
                        "batch of " + std::to_string(items.size()) +
                            " poisoned (" + e.what() +
                            "); retrying item-by-item");
            obs::FlightRecorder::instance().dump();
        }
        if (batch_ok) {
            for (size_t i = 0; i < items.size(); ++i) {
                finishOne(i, stamps);
                targets[i]->deliver(items[i].seq, payloads[i],
                                    steadyNowMs());
            }
        } else {
            // Panic isolation: a transactional model left no state
            // behind, so the item-by-item retry loses only the
            // poisoned volley; everything else still answers.
            for (size_t i = 0; i < items.size(); ++i)
                processOne(i);
        }
    }
    for (auto &s : targets)
        s->endFlight(1);
    batchStartMs_.store(0, std::memory_order_release);
    watchdogTripped_.store(false, std::memory_order_release);
}

void
StreamServer::batcherLoop()
{
    while (true) {
        {
            std::unique_lock<std::mutex> lock(workMutex_);
            workCv_.wait_for(
                lock, std::chrono::milliseconds(20), [this] {
                    return workFlag_ ||
                           stopThreads_.load(
                               std::memory_order_acquire);
                });
            workFlag_ = false;
        }
        if (stopThreads_.load(std::memory_order_acquire))
            break;

        const uint64_t now = steadyNowMs();

        // Round-robin gather in session-id order: one volley per
        // session per pass keeps a firehose session from starving
        // the rest, while per-session FIFO keeps sample order.
        std::vector<std::shared_ptr<Session>> snapshot;
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            snapshot.reserve(sessions_.size());
            for (auto &[id, s] : sessions_)
                snapshot.push_back(s);
        }
        std::sort(snapshot.begin(), snapshot.end(),
                  [](const auto &a, const auto &b) {
                      return a->id() < b->id();
                  });

        std::vector<std::shared_ptr<Session>> targets;
        std::vector<BatchItem> items;
        bool any_ready = true;
        while (any_ready && items.size() < config_.batchMax) {
            any_ready = false;
            for (auto &s : snapshot) {
                if (items.size() >= config_.batchMax)
                    break;
                std::optional<Session::Pending> p = s->popPending();
                if (!p)
                    continue;
                any_ready = true;
                if (now > p->enqueuedMs &&
                    now - p->enqueuedMs > s->deadlineMs()) {
                    s->dropVolley(p->seq, "deadline", now);
                    continue;
                }
                s->beginFlight(1);
                targets.push_back(s);
                BatchItem item;
                item.session = s->id();
                item.seq = p->seq;
                item.volley = std::move(p->volley);
                if constexpr (kLatencyEnabled) {
                    item.ingressUs = p->ingressUs;
                    item.admitUs = steadyNowUs();
                }
                items.push_back(std::move(item));
            }
        }

        if (!items.empty())
            runBatch(targets, items, now);
        sweepSessions(steadyNowMs());
    }
}

void
StreamServer::watchdogLoop()
{
    while (!stopThreads_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        const uint64_t start =
            batchStartMs_.load(std::memory_order_acquire);
        if (start == 0)
            continue;
        const uint64_t now = steadyNowMs();
        if (now > start && now - start > config_.watchdogStallMs &&
            !watchdogTripped_.exchange(true,
                                       std::memory_order_acq_rel)) {
            ST_OBS_ADD("serve.watchdog.stalls", 1);
            obs::FlightRecorder::instance().record("watchdog.trip",
                                                   now - start, 0);
            ST_LOG_ERROR("serve.watchdog",
                         "batch in flight for " +
                             std::to_string(now - start) +
                             " ms (readiness false)");
            // A stalled batch is exactly the incident the recorder
            // exists for: dump the timeline while it is fresh.
            obs::FlightRecorder::instance().dump();
        }
    }
}

void
StreamServer::reaperLoop()
{
    while (!stopThreads_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        const uint64_t now = steadyNowMs();

        if (g_stop_requested.load(std::memory_order_acquire) &&
            g_signal_server.load(std::memory_order_acquire) == this)
            requestStop();

        if (g_signal_server.load(std::memory_order_acquire) == this &&
            g_reload_requested.exchange(false,
                                        std::memory_order_acq_rel)) {
            // SIGHUP path; triggerReload() logs failures and the
            // registry keeps the incumbent, so the verdict needs no
            // extra handling here.
            (void)triggerReload();
        }

        admission_.decay(now);

        std::vector<std::shared_ptr<Session>> snapshot;
        {
            std::lock_guard<std::mutex> lock(sessionsMutex_);
            for (auto &[id, s] : sessions_)
                snapshot.push_back(s);
        }
        for (auto &s : snapshot) {
            const uint64_t last = s->lastActivityMs();
            if (!s->inputDone() && last != 0 && now > last &&
                now - last > config_.idleTimeoutMs) {
                ST_OBS_ADD("serve.sessions.idle_reaped", 1);
                obs::FlightRecorder::instance().record(
                    "session.idle_reap", s->id(), now - last);
                ST_LOG_INFO("serve.reaper",
                            "session " + std::to_string(s->id()) +
                                " idle for " +
                                std::to_string(now - last) +
                                " ms; force-closing");
                s->forceClose("idle timeout", now);
            }
        }

        if (draining_.load(std::memory_order_acquire) &&
            drainStartedMs_ != 0 &&
            now > drainStartedMs_ + config_.drainDeadlineMs) {
            for (auto &s : snapshot) {
                if (!s->finished()) {
                    drainedCleanly_.store(0,
                                          std::memory_order_release);
                    ST_OBS_ADD("serve.drain.forced", 1);
                    s->forceClose("drain deadline exceeded", now);
                }
            }
        }
        notifyWork();
    }
}

void
StreamServer::recordVolleyLatency(Session &session,
                                  const VolleyStamps &stamps)
{
    session.recordLatency(stamps);
    latency_.record(stamps);
    // Server-wide stage histograms also land in the global registry
    // so the Prometheus export carries the same decomposition.
    [[maybe_unused]] const std::array<uint64_t, kStageCount> d =
        stageDeltas(stamps);
    ST_OBS_HIST("serve.latency.queue_us", d[0]);
    ST_OBS_HIST("serve.latency.batch_us", d[1]);
    ST_OBS_HIST("serve.latency.model_us", d[2]);
    ST_OBS_HIST("serve.latency.egress_us", d[3]);
    ST_OBS_HIST("serve.latency.total_us", d[4]);
}

std::string
StreamServer::healthJson() const
{
    const char *state = "stopped";
    if (running_.load(std::memory_order_acquire))
        state = draining_.load(std::memory_order_acquire)
                    ? "draining"
                    : "running";

    // Per-session detail is bounded: the top healthTopK sessions by
    // delivered volleys, so a busy server's health line stays small.
    std::vector<std::shared_ptr<Session>> snapshot;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex_);
        snapshot.reserve(sessions_.size());
        for (const auto &[id, s] : sessions_)
            snapshot.push_back(s);
    }
    size_t ingress_hw = 0;
    size_t egress_hw = 0;
    std::vector<std::pair<uint64_t, std::shared_ptr<Session>>> ranked;
    ranked.reserve(snapshot.size());
    for (const auto &s : snapshot) {
        ingress_hw = std::max(ingress_hw, s->ingressHighWater());
        egress_hw = std::max(egress_hw, s->egressHighWater());
        ranked.emplace_back(s->stats().volleysOut, s);
    }
    const size_t top_k = std::min<size_t>(
        ranked.size(), static_cast<size_t>(config_.healthTopK));
    std::partial_sort(ranked.begin(), ranked.begin() + top_k,
                      ranked.end(),
                      [](const auto &a, const auto &b) {
                          if (a.first != b.first)
                              return a.first > b.first;
                          return a.second->id() < b.second->id();
                      });

    std::ostringstream os;
    os << "{\"server\":{";
    os << "\"state\":\"" << state << "\",";
    os << "\"ready\":" << (ready() ? "true" : "false") << ",";
    os << "\"version\":\"" << kVersionString << "\",";
    os << "\"simd\":\"" << evalSimdBodyName() << "\",";
    const std::shared_ptr<const ModelVersion> pinned =
        registry_.current();
    os << "\"model\":\"" << pinned->model->name() << "\",";
    os << "\"model_id\":\"" << pinned->info.id << "\",";
    os << "\"model_version\":" << pinned->info.version << ",";
    os << "\"model_checksum\":\"" << crcHex(pinned->info.fileCrc)
       << "\",";
    os << "\"model_epoch\":" << pinned->epoch << ",";
    os << "\"model_swaps\":" << registry_.swapCount() << ",";
    os << "\"model_swap_failed\":" << registry_.failedSwapCount()
       << ",";
    os << "\"inputs\":" << pinned->model->numInputs() << ",";
    os << "\"sessions_active\":" << activeSessions() << ",";
    os << "\"max_sessions\":" << config_.maxSessions << ",";
    os << "\"chaos\":" << (chaos_ ? "true" : "false") << ",";
    os << "\"watchdog_tripped\":"
       << (watchdogTripped_.load(std::memory_order_acquire)
               ? "true"
               : "false")
       << ",";
    os << "\"rings\":{\"ingress_highwater\":" << ingress_hw
       << ",\"egress_highwater\":" << egress_hw << "},";
    os << "\"uptime_ms\":" << (steadyNowMs() - startedAtMs_);
    os << "},\"latency\":{\"unit\":\"us\",\"stages\":";
    latency_.snapshot().writeJson(os);
    os << ",\"sessions\":{";
    for (size_t i = 0; i < top_k; ++i) {
        const std::shared_ptr<Session> &s = ranked[i].second;
        os << (i ? "," : "") << "\"" << s->id()
           << "\":{\"volleys\":" << ranked[i].first
           << ",\"ingress_hw\":" << s->ingressHighWater()
           << ",\"egress_hw\":" << s->egressHighWater()
           << ",\"stages\":";
        s->latencySnapshot().writeJson(os);
        os << "}";
    }
    os << "}},\"metrics\":";
    os << obs::MetricsRegistry::instance().snapshot().toJson();
    os << "}";
    return os.str();
}

} // namespace st::serve
