/**
 * @file
 * Bounded MPSC/SPSC ring for the serving layer (DESIGN.md Sec. 10).
 *
 * Every queue in src/serve/ is one of these: fixed capacity chosen at
 * session admission, never resized, so a misbehaving peer can occupy
 * at most its configured budget and "the queue grew until the OOM
 * killer arrived" is structurally impossible. Backpressure is explicit
 * rather than implicit: tryPush() refuses instead of blocking, and the
 * caller decides the degradation — pause the reader (flow control),
 * shed the item (accounted drop), or close the session.
 *
 * close() makes the ring drain-only: pushes fail immediately, pops
 * keep returning queued items until empty, and every waiter wakes.
 * A high-watermark is kept so health snapshots can report how close a
 * queue came to its bound.
 */

#ifndef ST_SERVE_RING_HPP
#define ST_SERVE_RING_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace st::serve {

/** A bounded, closable FIFO with blocking and non-blocking ends. */
template <typename T> class BoundedRing
{
  public:
    explicit BoundedRing(size_t capacity) : capacity_(capacity) {}

    BoundedRing(const BoundedRing &) = delete;
    BoundedRing &operator=(const BoundedRing &) = delete;

    /** Non-blocking push: false when full or closed (backpressure). */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
            raiseHighWater(items_.size());
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Blocking push with a deadline: waits for space up to @p timeout.
     * False when the ring is still full at the deadline or was closed
     * while waiting — the caller must shed or escalate, never retry
     * blindly.
     */
    bool
    pushWait(T item, std::chrono::milliseconds timeout)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!notFull_.wait_for(lock, timeout, [&] {
                return closed_ || items_.size() < capacity_;
            }))
            return false;
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        raiseHighWater(items_.size());
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /** Non-blocking pop: nullopt when empty. */
    std::optional<T>
    tryPop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (items_.empty())
            return std::nullopt;
        return popLocked(lock);
    }

    /**
     * Blocking pop: waits up to @p timeout for an item. nullopt means
     * empty at the deadline, or closed and fully drained.
     */
    std::optional<T>
    popWait(std::chrono::milliseconds timeout)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait_for(lock, timeout,
                           [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        return popLocked(lock);
    }

    /** Drain-only mode: pushes fail, pops empty the queue, all wake. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    size_t capacity() const { return capacity_; }

    /**
     * Deepest occupancy ever observed (for health snapshots). An
     * atomic so health/metrics readers never contend with (or race
     * against) the push paths — a snapshot poll must not perturb the
     * queues it is measuring.
     */
    size_t
    highWater() const
    {
        return highWater_.load(std::memory_order_relaxed);
    }

  private:
    /** Called with mutex_ held; pushes are serialized, so a plain
     *  store (no CAS max loop) cannot go backwards. */
    void
    raiseHighWater(size_t depth)
    {
        if (depth > highWater_.load(std::memory_order_relaxed))
            highWater_.store(depth, std::memory_order_relaxed);
    }

    std::optional<T>
    popLocked(std::unique_lock<std::mutex> &lock)
    {
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return item;
    }

    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_;
    std::atomic<size_t> highWater_{0};
    bool closed_ = false;
};

} // namespace st::serve

#endif // ST_SERVE_RING_HPP
