#include "serve/session.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "util/parse.hpp"

namespace st::serve {

namespace {

constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();

/** Saturating end of the window starting at @p start. */
uint64_t
windowEnd(uint64_t start, uint64_t window)
{
    return window > kMax - start ? kMax : start + window;
}

/** Split @p line into at most @p max whitespace tokens. */
size_t
tokenize(std::string_view line, std::string_view *toks, size_t max)
{
    size_t n = 0;
    size_t i = 0;
    while (i < line.size() && n < max) {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t' || line[i] == '\r'))
            ++i;
        if (i >= line.size() || line[i] == '#')
            break;
        const size_t begin = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
               line[i] != '\r' && line[i] != '#')
            ++i;
        toks[n++] = line.substr(begin, i - begin);
    }
    return n;
}

} // namespace

Session::Session(uint64_t id, const ServeConfig &config,
                 size_t model_inputs, std::function<void()> on_work)
    : id_(id), config_(config), modelInputs_(model_inputs),
      onWork_(std::move(on_work)),
      ingress_(static_cast<size_t>(config.ingressCapacity)),
      egress_(static_cast<size_t>(config.egressCapacity)),
      window_(config.window),
      deadlineMs_(std::min(config.deadlineMs, config.deadlineMaxMs)),
      current_(model_inputs, INF)
{
}

SessionState
Session::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

SessionStats
Session::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

uint64_t
Session::lastActivityMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lastActivityMs_;
}

bool
Session::inputDone() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inputDone_;
}

bool
Session::finished() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_ == SessionState::Closed && egress_.closed();
}

uint64_t
Session::deadlineMs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return deadlineMs_;
}

void
Session::touch(uint64_t now_ms)
{
    std::lock_guard<std::mutex> lock(mutex_);
    lastActivityMs_ = now_ms;
}

void
Session::emit(std::string line, uint64_t now_ms, bool may_block)
{
    ST_OBS_GAUGE_MAX("serve.queue.egress_highwater",
                     egress_.highWater());
    if (egress_.tryPush(line))
        return;
    ST_OBS_ADD("serve.egress.stall", 1);
    if (!may_block) {
        // Shared batcher/reaper thread: never wait on one session's
        // slow consumer — degrade this session immediately (the
        // terminal err line rides the reserved slot).
        forceClose("egress stalled", now_ms);
        return;
    }
    // Transport reader thread: the consumer is slow, so wait out one
    // (server-clamped) deadline of grace, then degrade this session
    // only — a stalled client must not pin server memory.
    if (egress_.pushWait(std::move(line),
                         std::chrono::milliseconds(deadlineMs())))
        return;
    forceClose("egress stalled past deadline", now_ms);
}

void
Session::quarantine(Status status, uint64_t now_ms)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (state_ == SessionState::Quarantined ||
            state_ == SessionState::Closed)
            return;
        state_ = SessionState::Quarantined;
    }
    ST_OBS_ADD("serve.sessions.quarantined", 1);
    obs::FlightRecorder::instance().record("session.quarantine", id_,
                                           0, status.message());
    emit("err " + status.toString(), now_ms, /*may_block=*/true);
    if (onWork_)
        onWork_();
}

void
Session::submitVolley(Volley volley, uint64_t now_ms, bool may_block)
{
    // Caller holds submitMutex_: seq assignment and the ingress push
    // are atomic against every other submit path, so queued volleys
    // are always in seq (== window) order.
    Pending p;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        p.seq = nextSeq_++;
        p.enqueuedMs = now_ms;
    }
    if constexpr (kLatencyEnabled)
        p.ingressUs = steadyNowUs();
    p.volley = std::move(volley);
    const uint64_t seq = p.seq;

    bool pushed = ingress_.tryPush(p); // copy: p survives a refusal
    if (!pushed && may_block) {
        // Ring full: signal backpressure once, then hold the reader
        // (flow control reaches the client through the transport).
        bool signal = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!backpressure_) {
                backpressure_ = true;
                signal = true;
            }
        }
        if (signal) {
            ST_OBS_ADD("serve.backpressure.on", 1);
            emit("note backpressure on", now_ms, may_block);
        }
        pushed = ingress_.pushWait(
            std::move(p), std::chrono::milliseconds(deadlineMs()));
    }
    if (!pushed) {
        // Still full at the deadline (or a non-blocking submit from
        // the batcher's drain sweep): shed the *newest* volley
        // (reject-new before degrade-old) with full accounting.
        ST_OBS_ADD("serve.shed.volleys", 1);
        obs::FlightRecorder::instance().record("volley.drop", id_,
                                               seq, "shed");
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.dropsShed;
        }
        emit("drop " + std::to_string(seq) + " shed", now_ms,
             may_block);
        if (onWork_)
            onWork_();
        return;
    }

    bool bp_off = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.volleysIn;
        if (backpressure_ &&
            ingress_.size() <= ingress_.capacity() / 2) {
            backpressure_ = false;
            bp_off = true;
        }
    }
    if (bp_off)
        emit("note backpressure off", now_ms, may_block);
    ST_OBS_ADD("serve.volleys.in", 1);
    ST_OBS_GAUGE_MAX("serve.queue.ingress_highwater",
                     ingress_.highWater());
    if (onWork_)
        onWork_();
}

void
Session::handleEvent(uint64_t time, uint64_t address, uint64_t now_ms)
{
    // Preconditions (address range, time ordering, window position)
    // are validated by feedLine before this is called. submitMutex_
    // covers the seal *and* the submits so a concurrent drain-sweep
    // endInput cannot interleave its own seal between them.
    std::lock_guard<std::mutex> submit(submitMutex_);
    std::vector<Volley> sealed;
    uint64_t gap_skipped = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        lastEventTime_ = time;
        sawEvent_ = true;

        // Advance the window grid to the one containing @p time,
        // sealing the open window and at most maxGapWindows empty
        // ones; longer silent gaps are elided with one note line.
        uint64_t end = windowEnd(windowStart_, window_);
        if (end != kMax && time >= end) {
            sealed.push_back(std::move(current_));
            current_ = Volley(modelInputs_, INF);
            windowStart_ = end;
            uint64_t whole = (time - windowStart_) / window_;
            const uint64_t emitted =
                whole > config_.maxGapWindows ? config_.maxGapWindows
                                              : whole;
            for (uint64_t i = 0; i < emitted; ++i) {
                sealed.push_back(Volley(modelInputs_, INF));
                windowStart_ = windowEnd(windowStart_, window_);
            }
            if (whole > emitted) {
                gap_skipped = whole - emitted;
                stats_.gapsElided += gap_skipped;
                windowStart_ += gap_skipped * window_;
            }
        }
        uint64_t rel = time - windowStart_;
        if (rel == kMax)
            rel = kMax - 1; // never alias Time's inf pattern
        if (current_[address].isInf())
            current_[address] = Time(rel);
    }
    if (gap_skipped > 0) {
        ST_OBS_ADD("serve.gap.skipped", gap_skipped);
        emit("note gap " + std::to_string(gap_skipped), now_ms,
             /*may_block=*/true);
    }
    for (Volley &v : sealed)
        submitVolley(std::move(v), now_ms, /*may_block=*/true);
}

void
Session::handleConfig(const std::string_view *toks, size_t ntoks,
                      uint64_t now_ms)
{
    uint64_t addresses = 0;
    uint64_t window = config_.window;
    uint64_t deadline = config_.deadlineMs;
    bool have_addresses = false;
    size_t i = 0;
    while (i < ntoks) {
        const std::string_view key = toks[i];
        if (i + 1 >= ntoks) {
            quarantine(Status(StatusCode::InvalidArgument,
                              "config key '" + std::string(key) +
                                  "' missing a value",
                              "line " + std::to_string(lineNo_)),
                       now_ms);
            return;
        }
        const std::optional<uint64_t> value =
            parseUint64Strict(toks[i + 1]);
        if (!value) {
            quarantine(Status(StatusCode::InvalidArgument,
                              "bad value '" + std::string(toks[i + 1]) +
                                  "' for '" + std::string(key) + "'",
                              "line " + std::to_string(lineNo_)),
                       now_ms);
            return;
        }
        if (key == "addresses") {
            addresses = *value;
            have_addresses = true;
        } else if (key == "window") {
            window = *value;
        } else if (key == "deadline_ms") {
            deadline = *value;
        } else {
            quarantine(Status(StatusCode::InvalidArgument,
                              "unknown config key '" +
                                  std::string(key) + "'",
                              "line " + std::to_string(lineNo_)),
                       now_ms);
            return;
        }
        i += 2;
    }
    if (!have_addresses || addresses != modelInputs_) {
        quarantine(
            Status(StatusCode::InvalidArgument,
                   "addresses must equal the model's input width (" +
                       std::to_string(modelInputs_) + ")",
                   "line " + std::to_string(lineNo_)),
            now_ms);
        return;
    }
    if (window == 0) {
        quarantine(Status(StatusCode::OutOfRange,
                          "window must be >= 1",
                          "line " + std::to_string(lineNo_)),
                   now_ms);
        return;
    }
    if (deadline == 0)
        deadline = config_.deadlineMs;
    // Clamp to the server-side ceiling: a client must not be able to
    // configure an unbounded wait (or overflow the signed chrono
    // conversion with values > INT64_MAX).
    if (deadline > config_.deadlineMaxMs) {
        ST_OBS_ADD("serve.config.deadline_clamped", 1);
        deadline = config_.deadlineMaxMs;
        emit("note deadline_ms clamped " + std::to_string(deadline),
             now_ms, /*may_block=*/true);
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        window_ = window;
        deadlineMs_ = deadline;
        state_ = SessionState::Streaming;
    }
}

void
Session::feedLine(std::string_view line, uint64_t now_ms)
{
    touch(now_ms);
    std::array<std::string_view, 8> toks;
    const size_t ntoks = tokenize(line, toks.data(), toks.size());
    SessionState state;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++lineNo_;
        ++stats_.linesIn;
        state = state_;
    }
    if (ntoks == 0)
        return; // blank / comment line
    if (state == SessionState::Closed)
        return;

    // `end` is honoured from every state so a quarantined or
    // half-configured stream still terminates cleanly.
    if (ntoks == 1 && toks[0] == "end") {
        endInput(now_ms);
        return;
    }
    if (state == SessionState::Quarantined)
        return; // poisoned: ignore everything up to `end`

    switch (state) {
      case SessionState::AwaitHello:
        if (ntoks == 2 && toks[0] == "stserve" && toks[1] == "1") {
            {
                std::lock_guard<std::mutex> lock(mutex_);
                state_ = SessionState::AwaitConfig;
            }
            emit("stserve-ok session " + std::to_string(id_) +
                     " inputs " + std::to_string(modelInputs_),
                 now_ms, /*may_block=*/true);
        } else {
            quarantine(Status(StatusCode::InvalidArgument,
                              "expected 'stserve 1'",
                              "line " + std::to_string(lineNo_)),
                       now_ms);
        }
        return;
      case SessionState::AwaitConfig:
        handleConfig(toks.data(), ntoks, now_ms);
        return;
      case SessionState::Streaming:
        break;
      default:
        return;
    }

    if (ntoks == 1 && toks[0] == "flush") {
        sealWindow(now_ms);
        return;
    }
    if (ntoks != 2) {
        quarantine(Status(StatusCode::InvalidArgument,
                          "expected '<time> <address>'",
                          "line " + std::to_string(lineNo_)),
                   now_ms);
        return;
    }
    const std::optional<uint64_t> time = parseUint64Strict(toks[0]);
    const std::optional<uint64_t> address =
        parseUint64Strict(toks[1]);
    if (!time || !address) {
        quarantine(Status(StatusCode::InvalidArgument,
                          "bad event '" + std::string(line) + "'",
                          "line " + std::to_string(lineNo_)),
                   now_ms);
        return;
    }
    if (*address >= modelInputs_) {
        quarantine(Status(StatusCode::OutOfRange,
                          "address " + std::to_string(*address) +
                              " out of range (have " +
                              std::to_string(modelInputs_) + ")",
                          "line " + std::to_string(lineNo_)),
                   now_ms);
        return;
    }
    bool out_of_order = false;
    bool before_window = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out_of_order = sawEvent_ && *time < lastEventTime_;
        before_window = !out_of_order && *time < windowStart_;
    }
    if (out_of_order) {
        quarantine(Status(StatusCode::InvalidArgument,
                          "events must be in time order",
                          "line " + std::to_string(lineNo_)),
                   now_ms);
        return;
    }
    if (before_window) {
        quarantine(Status(StatusCode::InvalidArgument,
                          "event time is inside an already flushed "
                          "window",
                          "line " + std::to_string(lineNo_)),
                   now_ms);
        return;
    }
    handleEvent(*time, *address, now_ms);
}

void
Session::sealWindow(uint64_t now_ms)
{
    std::lock_guard<std::mutex> submit(submitMutex_);
    sealWindowLocked(now_ms, /*may_block=*/true);
}

void
Session::sealWindowLocked(uint64_t now_ms, bool may_block)
{
    Volley sealed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sealed = std::move(current_);
        current_ = Volley(modelInputs_, INF);
        windowStart_ = windowEnd(windowStart_, window_);
    }
    submitVolley(std::move(sealed), now_ms, may_block);
}

void
Session::endInput(uint64_t now_ms, bool may_block)
{
    std::unique_lock<std::mutex> submit(submitMutex_,
                                        std::defer_lock);
    if (may_block) {
        submit.lock();
    } else if (!submit.try_lock()) {
        // A reader is mid-submit; sealing now would race its push.
        // The batcher's sweep simply retries on its next pass.
        return;
    }
    bool seal = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (inputDone_)
            return;
        inputDone_ = true;
        // Seal the open window iff it holds a spike (matching
        // AerStream::sliceWindows, whose last window always contains
        // the last event).
        for (const Time &t : current_) {
            if (t.isFinite()) {
                seal = true;
                break;
            }
        }
    }
    if (seal)
        sealWindowLocked(now_ms, may_block);
    touch(now_ms);
    if (onWork_)
        onWork_();
}

std::optional<std::string>
Session::nextOutput(std::chrono::milliseconds timeout)
{
    std::optional<std::string> line = egress_.popWait(timeout);
    if (line)
        return line;
    // Ring closed and fully drained: release the reserved terminal
    // line (set by forceClose) exactly once, after every queued
    // delivery. A plain timeout keeps returning nullopt.
    if (!egress_.closed() || egress_.size() != 0)
        return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!terminal_)
        return std::nullopt;
    line = std::move(terminal_);
    terminal_.reset();
    return line;
}

std::optional<Session::Pending>
Session::popPending()
{
    return ingress_.tryPop();
}

void
Session::deliver(uint64_t seq, const std::string &payload,
                 uint64_t now_ms)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.volleysOut;
        lastActivityMs_ = now_ms;
    }
    ST_OBS_ADD("serve.volleys.out", 1);
    emit("volley " + std::to_string(seq) + " " + payload, now_ms,
         /*may_block=*/false);
}

void
Session::dropVolley(uint64_t seq, const char *why, uint64_t now_ms)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        lastActivityMs_ = now_ms;
        if (std::string_view(why) == "deadline")
            ++stats_.dropsDeadline;
        else
            ++stats_.dropsPoisoned;
    }
    if (std::string_view(why) == "deadline")
        ST_OBS_ADD("serve.deadline_missed.volleys", 1);
    else
        ST_OBS_ADD("serve.volleys.dropped_poisoned", 1);
    obs::FlightRecorder::instance().record("volley.drop", id_, seq,
                                           why);
    emit("drop " + std::to_string(seq) + " " + why, now_ms,
         /*may_block=*/false);
}

void
Session::beginFlight(size_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    inFlight_ += n;
}

void
Session::endFlight(size_t n)
{
    std::lock_guard<std::mutex> lock(mutex_);
    inFlight_ -= n;
}

bool
Session::finishIfDrained(uint64_t now_ms)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (state_ == SessionState::Closed)
            return true;
        if (!inputDone_ || inFlight_ != 0 || ingress_.size() != 0)
            return false;
        if (endEmitted_)
            return true;
        endEmitted_ = true;
    }
    SessionStats s = stats();
    emit("end volleys " + std::to_string(s.volleysOut) + " drops " +
             std::to_string(s.dropsDeadline + s.dropsShed +
                            s.dropsPoisoned),
         now_ms, /*may_block=*/false);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        state_ = SessionState::Closed;
    }
    ingress_.close();
    egress_.close();
    return true;
}

void
Session::forceClose(const char *why, uint64_t now_ms)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (state_ == SessionState::Closed) {
            return;
        }
        state_ = SessionState::Closed;
        inputDone_ = true;
        lastActivityMs_ = now_ms;
    }
    ST_OBS_ADD("serve.sessions.force_closed", 1);
    obs::FlightRecorder::instance().record("session.force_close",
                                           id_, 0, why);
    const Status status(StatusCode::DataLoss, why);
    // The egress ring is typically full here (a stalled consumer is
    // the usual reason for a force-close), so the terminal line rides
    // the reserved side slot instead: nextOutput() hands it out after
    // the ring drains. Never silently lose the err line.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        terminal_ = "err " + status.toString();
    }
    ingress_.close();
    egress_.close();
    if (onWork_)
        onWork_();
}

} // namespace st::serve
