/**
 * @file
 * StreamServer: the long-lived inference daemon core (ROADMAP item 2).
 *
 * One server owns one model and N sessions. Three internal threads:
 *
 *   - the *batcher* gathers ready volleys round-robin across sessions
 *     (per-session FIFO preserved), applies per-volley deadlines,
 *     optionally perturbs them through the chaos FaultInjector, and
 *     runs the model batch on the shared ThreadPool; results are
 *     demultiplexed back to each session's egress ring in seq order.
 *     A model exception poisons a volley, not the daemon: a
 *     transactional (stateless) model's batch is retried item-by-item
 *     so only the poisoned volley is dropped (accounted as
 *     `drop <seq> poisoned`); a stateful model is fed one item per
 *     call in the first place, so a throw can never re-apply items
 *     committed before it.
 *   - the *watchdog* observes batch progress; a batch in flight past
 *     watchdogStallMs flips readiness to false (the daemon stays up —
 *     an orchestrator decides what to do with an unready instance)
 *     and ticks serve.watchdog.stalls.
 *   - the *reaper* closes idle sessions, decays admission backoff and
 *     enforces the drain deadline during shutdown.
 *
 * Graceful drain: requestStop() (the SIGTERM/SIGINT path) stops
 * admitting, lets in-flight volleys finish, emits every session's end
 * line, then joins the threads; waitDrained() reports whether that
 * completed inside drainDeadlineMs (sessions still open at the
 * deadline are force-closed and counted in serve.drain.forced).
 *
 * Health/readiness is a JSON snapshot combining server state with the
 * full obs metrics registry — the `health` wire command and the
 * daemon's --health flag both serve it.
 */

#ifndef ST_SERVE_SERVER_HPP
#define ST_SERVE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "serve/admission.hpp"
#include "serve/config.hpp"
#include "serve/latency.hpp"
#include "serve/model.hpp"
#include "serve/registry.hpp"
#include "serve/session.hpp"

namespace st::serve {

/** Milliseconds on the steady clock (the serving layer's time base). */
uint64_t steadyNowMs();

/** The streaming inference engine. */
class StreamServer
{
  public:
    StreamServer(std::unique_ptr<ServeModel> model, ServeConfig config);

    /**
     * Boot with an explicit model identity (an STMF-loaded model's
     * ModelInfo) so health reports the real id/version/checksum from
     * the first request instead of the "builtin" placeholder.
     */
    StreamServer(std::shared_ptr<ServeModel> model,
                 model::ModelInfo info, ServeConfig config);

    ~StreamServer();

    StreamServer(const StreamServer &) = delete;
    StreamServer &operator=(const StreamServer &) = delete;

    const ServeConfig &config() const { return config_; }

    /**
     * The currently published model. The reference stays valid until
     * the next successful swapModel(); batch processing never uses
     * this accessor — the batcher pins a version per batch instead.
     */
    ServeModel &model() { return *registry_.current()->model; }

    /** The hot-swap model registry (version pinning, swap counters). */
    ModelRegistry &registry() { return registry_; }

    /**
     * Canary + publish @p candidate as the next model version (see
     * ModelRegistry::swap). In-flight batches finish on the version
     * they pinned; new batches — and new sessions' width negotiation —
     * see the new one. A failed canary leaves the incumbent serving.
     */
    Status swapModel(std::shared_ptr<ServeModel> candidate,
                     model::ModelInfo info)
    {
        return registry_.swap(std::move(candidate), std::move(info));
    }

    /**
     * Install the reload procedure (rescan a model dir, load, swap)
     * invoked by SIGHUP and the `reload` wire command. The handler
     * runs on the reaper thread or a transport thread — never the
     * batcher — and must be internally synchronized.
     */
    void setReloadHandler(std::function<Status()> handler);

    /** Run the installed reload handler (FailedPrecondition if none). */
    Status triggerReload();

    /** Start batcher/watchdog/reaper. Idempotent. */
    void start();

    /**
     * Admit a new session for @p client_key, or shed it. On refusal
     * the result's session is null and retryAfterMs/reason explain
     * the shed (the transport turns them into a `busy` line).
     */
    struct OpenResult
    {
        std::shared_ptr<Session> session;
        uint64_t retryAfterMs = 0;
        const char *reason = "";
    };
    OpenResult openSession(const std::string &client_key);

    /** Sessions currently open (admitted, not yet finished). */
    size_t activeSessions() const;

    /**
     * Stop admitting and drain: async-signal-safe enough to be called
     * from the SIGTERM handler path (sets flags + notifies).
     */
    void requestStop();

    /** True once requestStop() was called. */
    bool draining() const
    {
        return draining_.load(std::memory_order_acquire);
    }

    /**
     * Wait for every session to finish and the threads to stop, up to
     * @p timeout_ms (0 = the configured drain deadline). Returns true
     * on a clean drain, false if sessions had to be force-closed.
     */
    bool waitDrained(uint64_t timeout_ms = 0);

    /** Readiness: running, not draining, watchdog not tripped. */
    bool ready() const;

    /**
     * Health snapshot: server block (state, build/version, SIMD body,
     * ring high-watermarks) + per-stage/per-session latency
     * percentiles + the full obs metrics registry.
     */
    std::string healthJson() const;

    /** Server-wide latency decomposition (all delivered volleys). */
    LatencySnapshot
    latencySnapshot() const
    {
        return latency_.snapshot();
    }

    /**
     * Enable chaos mode: every batched volley is perturbed through a
     * FaultInjector realizing @p spec, keyed deterministically by
     * (session id, seq) — live proof of the degradation contract.
     * Call before start().
     */
    void enableChaos(const fault::FaultSpec &spec);

    /**
     * Install SIGTERM/SIGINT handlers that requestStop() this server,
     * plus a SIGHUP handler that triggers the reload procedure (one
     * server per process; passing nullptr uninstalls).
     */
    static void installSignalHandlers(StreamServer *server);

    /** Called by session callbacks: wake the batcher. */
    void notifyWork();

  private:
    void batcherLoop();
    void watchdogLoop();
    void reaperLoop();
    void runBatch(std::vector<std::shared_ptr<Session>> &targets,
                  std::vector<BatchItem> &items, uint64_t now_ms);
    void sweepSessions(uint64_t now_ms);
    void recordVolleyLatency(Session &session,
                             const VolleyStamps &stamps);

    ServeConfig config_;
    ModelRegistry registry_;
    AdmissionController admission_;

    std::mutex reloadMutex_;
    std::function<Status()> reloadHandler_;

    mutable std::mutex sessionsMutex_;
    std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_;
    uint64_t nextSessionId_ = 1;

    std::mutex workMutex_;
    std::condition_variable workCv_;
    bool workFlag_ = false;

    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopThreads_{false};
    std::atomic<bool> watchdogTripped_{false};
    std::atomic<uint64_t> batchStartMs_{0}; //!< 0 = no batch in flight
    std::atomic<uint64_t> drainedCleanly_{1};
    uint64_t startedAtMs_ = 0;
    uint64_t drainStartedMs_ = 0;

    std::unique_ptr<fault::FaultInjector> chaos_;
    LatencyRecorder latency_;

    std::thread batcher_;
    std::thread watchdog_;
    std::thread reaper_;
};

} // namespace st::serve

#endif // ST_SERVE_SERVER_HPP
