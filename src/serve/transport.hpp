/**
 * @file
 * Transports: how wire lines reach a Session.
 *
 * Two transports share one shape — a reader loop feeding
 * Session::feedLine and a writer thread draining Session::nextOutput:
 *
 *   - the *pipe* transport serves exactly one session over a FILE*
 *     pair (stdin/stdout for the daemon's --pipe mode). EOF is an
 *     implicit `end`; a drain request unblocks the reader because the
 *     signal handlers are installed without SA_RESTART.
 *   - the *TCP* transport listens on a port (0 = ephemeral, reported
 *     via port()), accepts with a poll loop so drain requests are
 *     noticed promptly, and runs one reader + one writer thread per
 *     connection. Refused admissions answer with a single
 *     `busy retry_after_ms <N> reason <R>` line and close.
 *
 * Both understand the out-of-band `health` command (answered inline
 * with `health <json>`, not forwarded to the session).
 */

#ifndef ST_SERVE_TRANSPORT_HPP
#define ST_SERVE_TRANSPORT_HPP

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/server.hpp"

namespace st::serve {

/**
 * Serve one session over @p in / @p out (the --pipe daemon mode).
 * Blocks until the stream finishes or the server drains. Returns true
 * when a session was admitted and ran to its end line.
 */
bool runPipeSession(StreamServer &server, std::FILE *in,
                    std::FILE *out);

/** Poll-accept TCP listener fanning connections into the server. */
class TcpTransport
{
  public:
    /**
     * Bind and listen on 127.0.0.1:@p port (0 picks an ephemeral
     * port). Throws StatusError on socket/bind failure.
     */
    TcpTransport(StreamServer &server, uint16_t port);
    ~TcpTransport();

    TcpTransport(const TcpTransport &) = delete;
    TcpTransport &operator=(const TcpTransport &) = delete;

    /** The bound port (useful when constructed with port 0). */
    uint16_t port() const { return port_; }

    /**
     * Accept loop: blocks until stop() or the server starts draining,
     * then closes the listener and joins every connection thread.
     */
    void serve();

    /** Run serve() on a background thread. */
    void serveAsync();

    /** Stop accepting; serve() returns after connections wind down. */
    void stop();

  private:
    /** One live connection: its thread plus a finished flag the
     *  accept loop polls so completed threads are joined promptly
     *  (bounded resources even under a reconnect storm). */
    struct Conn
    {
        std::thread thread;
        std::atomic<bool> done{false};
    };

    void handleConnection(int fd);
    void reapFinished(bool join_all);

    StreamServer &server_;
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stop_{false};

    std::mutex connsMutex_;
    std::vector<std::unique_ptr<Conn>> conns_;
    std::thread acceptThread_;
};

} // namespace st::serve

#endif // ST_SERVE_TRANSPORT_HPP
