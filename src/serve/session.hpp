/**
 * @file
 * One client stream: protocol state machine, window framing, bounded
 * queues, quarantine.
 *
 * A Session is the unit of isolation in the serving layer. Its three
 * actors touch disjoint ends of two bounded rings:
 *
 *   transport reader ──lines──▶ [Session parse/frame] ──▶ ingress ring
 *   batcher          ◀─pop── ingress ring   ──deliver──▶ egress ring
 *   transport writer ◀─pop── egress ring
 *
 * Parse errors poison only this session (state Quarantined: the error
 * line — with its line number — is echoed, further input is ignored
 * until `end`). Overload degrades per the contract: ingress-full first
 * signals backpressure and blocks the reader (flow control), then
 * sheds the newest volley with an accounted `drop <seq> shed`; an
 * egress stall closes this session only — after one (server-clamped)
 * deadline of grace on the reader thread, immediately on the shared
 * batcher/reaper threads, which never wait on one session's consumer.
 *
 * Wire grammar (client -> server), one line each:
 *
 *     stserve 1
 *     addresses <N> [window <W>] [deadline_ms <D>]
 *     <time> <address>          # AER event, times nondecreasing
 *     flush                     # seal the open window early
 *     end                       # end of stream, drain and finish
 *
 * Server -> client:
 *
 *     stserve-ok session <id> inputs <N>
 *     volley <seq> <payload>
 *     drop <seq> <deadline|shed|poisoned>
 *     note backpressure <on|off> | note gap <skipped>
 *     err <status>              # session quarantined
 *     end volleys <n> drops <n>
 */

#ifndef ST_SERVE_SESSION_HPP
#define ST_SERVE_SESSION_HPP

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "fault/status.hpp"
#include "serve/config.hpp"
#include "serve/latency.hpp"
#include "serve/ring.hpp"
#include "tnn/volley.hpp"

namespace st::serve {

/** Protocol position of a session. */
enum class SessionState : uint8_t
{
    AwaitHello,  //!< expecting "stserve 1"
    AwaitConfig, //!< expecting "addresses ..."
    Streaming,   //!< accepting events
    Quarantined, //!< poisoned by bad input; draining to `end`
    Closed,      //!< finished (end line emitted, egress closed)
};

/** Per-session accounting (all monotone). */
struct SessionStats
{
    uint64_t linesIn = 0;
    uint64_t volleysIn = 0;   //!< framed and queued
    uint64_t volleysOut = 0;  //!< delivered results
    uint64_t dropsDeadline = 0;
    uint64_t dropsShed = 0;
    uint64_t dropsPoisoned = 0;
    uint64_t gapsElided = 0;  //!< silent windows skipped
};

/** One client stream (see file comment for the threading contract). */
class Session
{
  public:
    /** A framed volley waiting for the batcher. */
    struct Pending
    {
        uint64_t seq = 0;
        Volley volley;
        uint64_t enqueuedMs = 0;
        uint64_t ingressUs = 0; //!< latency stamp (0 when obs off)
    };

    /**
     * @p on_work is called (without session locks held) whenever the
     * batcher may have new work or drain progress to make.
     */
    Session(uint64_t id, const ServeConfig &config,
            size_t model_inputs, std::function<void()> on_work);

    uint64_t id() const { return id_; }
    SessionState state() const;
    SessionStats stats() const;
    uint64_t lastActivityMs() const;
    bool inputDone() const;

    /** True once the end line is out and the egress ring is closed. */
    bool finished() const;

    // --- transport reader side ------------------------------------
    /** Feed one wire line (without its newline). */
    void feedLine(std::string_view line, uint64_t now_ms);

    /**
     * EOF from the transport: treated as an implicit `end`.
     *
     * @p may_block is false when called from a shared server thread
     * (the batcher's drain sweep): the final seal then uses try-lock
     * and non-blocking pushes so a reader mid-submit can never stall
     * the batcher — a failed try-lock is simply retried on the next
     * sweep.
     */
    void endInput(uint64_t now_ms, bool may_block = true);

    // --- transport writer side ------------------------------------
    /**
     * Next response line, waiting up to @p timeout. nullopt with
     * finished() true means the stream is complete; nullopt otherwise
     * is a timeout — poll again.
     */
    std::optional<std::string>
    nextOutput(std::chrono::milliseconds timeout);

    // --- batcher side ---------------------------------------------
    /** Pop the oldest pending volley (FIFO), if any. */
    std::optional<Pending> popPending();

    /** Queued-but-unprocessed volley count. */
    size_t ingressDepth() const { return ingress_.size(); }

    /** Deliver the result of volley @p seq (in per-session order). */
    void deliver(uint64_t seq, const std::string &payload,
                 uint64_t now_ms);

    /** Account volley @p seq as dropped ("deadline"/"poisoned"). */
    void dropVolley(uint64_t seq, const char *why, uint64_t now_ms);

    /**
     * Emit the end line and close the egress ring once input is done,
     * the ingress ring is drained and nothing is in flight. Returns
     * true when the session is (now) finished.
     */
    bool finishIfDrained(uint64_t now_ms);

    /** Mark one popped volley as in flight / done (batcher only). */
    void beginFlight(size_t n);
    void endFlight(size_t n);

    /**
     * Hard-close from the reaper or drain deadline: emits
     * "err <code>: <why>", closes both rings. Idempotent.
     */
    void forceClose(const char *why, uint64_t now_ms);

    /** The per-connection deadline (config default or client's). */
    uint64_t deadlineMs() const;

    // --- observability ---------------------------------------------
    /** Record one delivered volley's stage deltas (batcher only). */
    void
    recordLatency(const VolleyStamps &stamps)
    {
        latency_.record(stamps);
    }

    /** Per-session latency decomposition (health snapshots). */
    LatencySnapshot
    latencySnapshot() const
    {
        return latency_.snapshot();
    }

    /** Ring high-watermarks (lock-free; health snapshots). */
    size_t ingressHighWater() const { return ingress_.highWater(); }
    size_t egressHighWater() const { return egress_.highWater(); }

  private:
    void quarantine(Status status, uint64_t now_ms);
    void sealWindow(uint64_t now_ms);
    void sealWindowLocked(uint64_t now_ms, bool may_block);
    void handleEvent(uint64_t time, uint64_t address, uint64_t now_ms);
    void handleConfig(const std::string_view *toks, size_t ntoks,
                      uint64_t now_ms);
    void submitVolley(Volley volley, uint64_t now_ms, bool may_block);
    void emit(std::string line, uint64_t now_ms, bool may_block);
    void touch(uint64_t now_ms);

    const uint64_t id_;
    const ServeConfig config_;
    const size_t modelInputs_;
    std::function<void()> onWork_;

    BoundedRing<Pending> ingress_;
    BoundedRing<std::string> egress_;
    LatencyRecorder latency_;

    /**
     * Serializes every seal-and-submit path (handleEvent, flush,
     * endInput): seq assignment and the ingress push happen under one
     * lock, so two submitters can never push volleys out of window
     * order — the per-session FIFO guarantee holds even when the
     * batcher's drain sweep ends input concurrently with the reader.
     * Always acquired before mutex_; never held by the batcher except
     * via try-lock.
     */
    std::mutex submitMutex_;

    mutable std::mutex mutex_;
    SessionState state_ = SessionState::AwaitHello;
    SessionStats stats_;
    uint64_t window_;
    uint64_t deadlineMs_;
    uint64_t lineNo_ = 0;
    uint64_t nextSeq_ = 0;
    uint64_t lastActivityMs_ = 0;
    uint64_t lastEventTime_ = 0;
    bool sawEvent_ = false;
    uint64_t windowStart_ = 0;
    Volley current_;
    bool inputDone_ = false;
    bool backpressure_ = false;
    bool endEmitted_ = false;
    size_t inFlight_ = 0;
    /**
     * Reserved slot for the terminal "err ..." line of a force-close.
     * The egress ring is usually *full* when a session is force-closed
     * (a stalled consumer is why), so the terminal line cannot ride
     * the ring; nextOutput() releases it after the ring drains, which
     * guarantees every session ends in a visible end/err line.
     */
    std::optional<std::string> terminal_;
};

} // namespace st::serve

#endif // ST_SERVE_SESSION_HPP
