/**
 * @file
 * Serving-layer configuration (every knob of DESIGN.md Sec. 10).
 *
 * All limits are explicit and all of them exist: a StreamServer has no
 * unbounded queue, no deadline-free operation and no unlimited session
 * count. Defaults suit the loopback/demo scale; production deployments
 * override through ST_SERVE_* environment variables, which go through
 * the hardened env parsers (util/parse.hpp) — a typo'd value warns and
 * falls back rather than silently configuring something else.
 */

#ifndef ST_SERVE_CONFIG_HPP
#define ST_SERVE_CONFIG_HPP

#include <cstdint>

namespace st::serve {

/** Tunables of one StreamServer instance. */
struct ServeConfig
{
    /** Default AER window width (time units per volley); sessions may
     *  narrow it per-connection via the `window` config field. */
    uint64_t window = 16;

    /** Admission bound: concurrent sessions beyond this are shed. */
    uint64_t maxSessions = 64;

    /** Per-session ingress ring capacity (queued volleys). */
    uint64_t ingressCapacity = 64;

    /** Per-session egress ring capacity (queued result lines). */
    uint64_t egressCapacity = 256;

    /** Volleys per model batch (across sessions). */
    uint64_t batchMax = 64;

    /** Per-volley deadline: queued longer than this => dropped with an
     *  accounted `drop <seq> deadline` notice. */
    uint64_t deadlineMs = 1000;

    /** Server-side ceiling on the session deadline: a client
     *  `deadline_ms` above this is clamped, so no client-chosen value
     *  can configure an unbounded (or chrono-overflowing) wait. */
    uint64_t deadlineMaxMs = 60000;

    /** Sessions with no input/output activity this long are reaped. */
    uint64_t idleTimeoutMs = 30000;

    /** Graceful-drain budget after SIGTERM/requestStop(). */
    uint64_t drainDeadlineMs = 5000;

    /** A model batch in flight longer than this trips the watchdog
     *  (readiness goes false; the daemon stays up). */
    uint64_t watchdogStallMs = 2000;

    /** Base retry-after hint attached to shed responses. */
    uint64_t retryAfterMs = 100;

    /** Retry-after backoff cap for repeat offenders. */
    uint64_t retryAfterMaxMs = 10000;

    /** Offender backoff halves after this long without a reject. */
    uint64_t offenderDecayMs = 1000;

    /** Silent windows emitted per gap before eliding the rest with a
     *  `note gap` line (guards against timestamp-jump floods). */
    uint64_t maxGapWindows = 8;

    /** Thread lanes handed to the model batch call (0 = default). */
    uint64_t nthreads = 0;

    /** Per-session latency detail in healthJson() covers the top-K
     *  sessions by delivered volleys (bounds the snapshot size). */
    uint64_t healthTopK = 8;

    /**
     * Defaults overridden by the ST_SERVE_* environment: WINDOW,
     * MAX_SESSIONS, INGRESS, EGRESS, BATCH_MAX, DEADLINE_MS,
     * DEADLINE_MAX_MS, IDLE_TIMEOUT_MS, DRAIN_MS, WATCHDOG_MS,
     * RETRY_AFTER_MS, RETRY_AFTER_MAX_MS, OFFENDER_DECAY_MS,
     * MAX_GAP_WINDOWS, THREADS, HEALTH_TOPK.
     */
    static ServeConfig fromEnv();
};

} // namespace st::serve

#endif // ST_SERVE_CONFIG_HPP
