#include "serve/model.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"

namespace st::serve {

std::string
wireVolley(std::span<const Time> v)
{
    std::ostringstream os;
    for (size_t i = 0; i < v.size(); ++i) {
        if (i)
            os << ' ';
        os << v[i];
    }
    return os.str();
}

TnnServeModel::TnnServeModel(TnnNetwork net) : net_(std::move(net))
{
    if (net_.numLayers() == 0)
        throw std::invalid_argument("TnnServeModel: empty network");
    numInputs_ = net_.layer(0).params().numInputs;
}

std::vector<std::string>
TnnServeModel::processBatch(std::span<const BatchItem> items,
                            size_t nthreads)
{
    std::vector<Volley> inputs;
    inputs.reserve(items.size());
    for (const BatchItem &item : items)
        inputs.push_back(item.volley);
    const std::vector<Volley> outputs =
        net_.processBatch(inputs, nthreads);
    std::vector<std::string> payloads;
    payloads.reserve(outputs.size());
    for (const Volley &out : outputs)
        payloads.push_back(wireVolley(out));
    return payloads;
}

LsmAnomalyModel::LsmAnomalyModel(const ReservoirParams &params,
                                 size_t steps_per_volley,
                                 double ema_alpha)
    : params_(params), stepsPerVolley_(steps_per_volley),
      emaAlpha_(ema_alpha)
{
    if (params_.numInputs == 0)
        throw std::invalid_argument("LsmAnomalyModel: no inputs");
    if (stepsPerVolley_ == 0)
        throw std::invalid_argument("LsmAnomalyModel: zero steps");
}

std::vector<std::string>
LsmAnomalyModel::processBatch(std::span<const BatchItem> items,
                              size_t nthreads)
{
    // Reservoirs are stateful per session, so the batch is processed
    // serially in item order (per-session seq order is the server's
    // guarantee); parallelism here would trade determinism for
    // nothing, as reservoirs are tiny next to the TNN path.
    (void)nthreads;
    std::vector<std::string> payloads;
    payloads.reserve(items.size());
    for (const BatchItem &item : items) {
        SessionState &st = state_[item.session];
        if (!st.reservoir)
            st.reservoir = std::make_unique<Reservoir>(params_);
        const size_t before = st.reservoir->spikeCount();
        st.reservoir->runVolley(item.volley, stepsPerVolley_);
        const double spikes = static_cast<double>(
            st.reservoir->spikeCount() - before);
        double score = 0.0;
        if (st.emaSpikes < 0.0) {
            st.emaSpikes = spikes; // first volley: baseline, score 0
        } else {
            score = std::fabs(spikes - st.emaSpikes) /
                    (st.emaSpikes + 1.0);
            st.emaSpikes = emaAlpha_ * spikes +
                           (1.0 - emaAlpha_) * st.emaSpikes;
        }
        ST_OBS_HIST("serve.lsm.volley_spikes",
                    static_cast<uint64_t>(spikes));
        std::ostringstream os;
        os << "score " << static_cast<uint64_t>(score * 1000.0)
           << " spikes " << static_cast<uint64_t>(spikes);
        payloads.push_back(os.str());
    }
    return payloads;
}

void
LsmAnomalyModel::endSession(uint64_t session)
{
    state_.erase(session);
}

} // namespace st::serve
