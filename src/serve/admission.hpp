/**
 * @file
 * Admission control: shed load at the door, never in the middle.
 *
 * The degradation contract (DESIGN.md Sec. 10) is reject-new before
 * degrade-old: once maxSessions streams are being served, a new
 * connection is refused with a machine-usable retry-after hint, and
 * the sessions already admitted keep their full service level. A
 * client that hammers the door anyway earns exponentially growing
 * hints (per client key), which decay back to the base once it backs
 * off — a polite client is forgiven quickly, a tight reconnect loop is
 * priced out. Every refusal ticks serve.shed.sessions so shed load is
 * fully accounted.
 */

#ifndef ST_SERVE_ADMISSION_HPP
#define ST_SERVE_ADMISSION_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "serve/config.hpp"

namespace st::serve {

/** Session admission + per-client reject backoff. */
class AdmissionController
{
  public:
    explicit AdmissionController(const ServeConfig &config);

    /** Outcome of one admission attempt. */
    struct Decision
    {
        bool admit = false;
        /** When refused: suggested client wait before retrying. */
        uint64_t retryAfterMs = 0;
        /** When refused: "capacity" or "draining". */
        const char *reason = "";
    };

    /**
     * Decide admission for a connection from @p client_key (peer
     * address, or "pipe"). @p active is the current session count;
     * @p draining refuses everything (shutdown in progress).
     */
    Decision tryAdmit(const std::string &client_key, uint64_t now_ms,
                      uint64_t active, bool draining);

    /**
     * Decay offender penalties: halve every offenderDecayMs since the
     * last reject; fully healed entries are dropped. Called
     * periodically by the server's reaper tick.
     */
    void decay(uint64_t now_ms);

    /** Tracked offender entries (for tests / health). */
    size_t offenderCount() const;

  private:
    struct Offender
    {
        uint64_t penaltyMs;
        uint64_t lastRejectMs;
    };

    ServeConfig config_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, Offender> offenders_;
};

} // namespace st::serve

#endif // ST_SERVE_ADMISSION_HPP
