#include "serve/latency.hpp"

#include <chrono>
#include <ostream>
#include <sstream>

namespace st::serve {

namespace {

constexpr std::array<const char *, kStageCount> kStageNames = {
    "queue", "batch", "model", "egress", "total"};

/** b - a, clamped at 0 for defensive symmetry. */
uint64_t
sub(uint64_t b, uint64_t a)
{
    return b > a ? b - a : 0;
}

} // namespace

uint64_t
steadyNowUs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const char *
stageName(size_t stage)
{
    return stage < kStageCount ? kStageNames[stage] : "?";
}

std::array<uint64_t, kStageCount>
stageDeltas(const VolleyStamps &s)
{
    return {sub(s.admitUs, s.ingressUs),
            sub(s.modelEnterUs, s.admitUs),
            sub(s.modelExitUs, s.modelEnterUs),
            sub(s.egressUs, s.modelExitUs),
            sub(s.egressUs, s.ingressUs)};
}

void
LatencySnapshot::writeJson(std::ostream &out) const
{
    out << "{";
    for (size_t i = 0; i < kStageCount; ++i) {
        const StageHist &h = stages[i];
        out << (i ? "," : "") << "\"" << stageName(i)
            << "\":{\"count\":" << h.count
            << ",\"p50\":" << h.percentile(0.50)
            << ",\"p90\":" << h.percentile(0.90)
            << ",\"p99\":" << h.percentile(0.99)
            << ",\"p999\":" << h.percentile(0.999) << "}";
    }
    out << "}";
}

std::string
LatencySnapshot::toJson() const
{
    std::ostringstream out;
    writeJson(out);
    return out.str();
}

} // namespace st::serve
