#include "serve/transport.hpp"

#include <cerrno>
#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "fault/status.hpp"
#include "obs/obs.hpp"

namespace st::serve {

namespace {

/** Strip one trailing newline (LF or CRLF) in place. */
void
chomp(std::string &line)
{
    while (!line.empty() &&
           (line.back() == '\n' || line.back() == '\r'))
        line.pop_back();
}

/** Writer loop shared by both transports. */
void
writerLoop(const std::shared_ptr<Session> &session,
           const std::function<bool(const std::string &)> &put)
{
    while (true) {
        std::optional<std::string> line =
            session->nextOutput(std::chrono::milliseconds(100));
        if (line) {
            line->push_back('\n');
            if (!put(*line))
                break; // peer gone: reader side will notice EOF
        } else if (session->finished()) {
            break;
        }
    }
}

/**
 * One wire line arrived. Returns false when the stream is over
 * (`end` seen) so the reader can stop early instead of waiting for
 * EOF.
 */
bool
dispatchLine(StreamServer &server,
             const std::shared_ptr<Session> &session,
             std::string &line,
             const std::function<bool(const std::string &)> &put)
{
    chomp(line);
    if (line == "health") {
        put("health " + server.healthJson() + "\n");
        return true;
    }
    if (line == "reload") {
        // Same procedure as SIGHUP, but synchronous: the reply tells
        // the operator whether the swap published or was rolled back.
        const Status status = server.triggerReload();
        put("reload " +
            (status.isOk() ? std::string("ok") : status.str()) + "\n");
        return true;
    }
    session->feedLine(line, steadyNowMs());
    return line != "end";
}

/**
 * Poll-driven line reader over an fd: returns false on EOF/error,
 * filling @p line (newline stripped). @p should_stop is checked
 * between polls so a drain unblocks the reader within ~100 ms.
 */
class FdLineReader
{
  public:
    explicit FdLineReader(int fd) : fd_(fd) {}

    bool
    next(std::string &line, const std::function<bool()> &should_stop)
    {
        while (true) {
            size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buf_, 0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            if (eof_) {
                if (buf_.empty())
                    return false;
                line = std::move(buf_);
                buf_.clear();
                return true;
            }
            if (should_stop())
                return false;
            struct pollfd pfd = {fd_, POLLIN, 0};
            const int rc = poll(&pfd, 1, 100);
            if (rc < 0 && errno != EINTR)
                return false;
            if (rc <= 0)
                continue;
            char chunk[4096];
            const ssize_t n = read(fd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR || errno == EAGAIN)
                    continue;
                return false;
            }
            if (n == 0)
                eof_ = true;
            else
                buf_.append(chunk, static_cast<size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
    bool eof_ = false;
};

/** write(2) the whole buffer, retrying on EINTR/partial writes. */
bool
writeAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace

bool
runPipeSession(StreamServer &server, std::FILE *in, std::FILE *out)
{
    std::mutex out_mutex;
    const auto put = [&](const std::string &line) {
        std::lock_guard<std::mutex> lock(out_mutex);
        if (std::fputs(line.c_str(), out) < 0)
            return false;
        std::fflush(out);
        return true;
    };

    StreamServer::OpenResult open = server.openSession("pipe");
    if (!open.session) {
        put("busy retry_after_ms " +
            std::to_string(open.retryAfterMs) + " reason " +
            open.reason + "\n");
        return false;
    }
    // The session itself answers the hello line with stserve-ok.
    std::shared_ptr<Session> session = open.session;
    std::thread writer(
        [&] { writerLoop(session, put); });

    FdLineReader reader(fileno(in));
    std::string line;
    while (reader.next(line,
                       [&] { return server.draining(); })) {
        if (!dispatchLine(server, session, line, put))
            break;
    }
    session->endInput(steadyNowMs());
    writer.join();
    return session->finished();
}

TcpTransport::TcpTransport(StreamServer &server, uint16_t port)
    : server_(server)
{
    listenFd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw StatusError(Status(StatusCode::Internal,
                                 std::string("socket: ") +
                                     std::strerror(errno)));
    const int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
             sizeof(addr)) < 0 ||
        listen(listenFd_, 64) < 0) {
        const std::string why = std::strerror(errno);
        close(listenFd_);
        listenFd_ = -1;
        throw StatusError(
            Status(StatusCode::Internal, "bind/listen: " + why));
    }
    socklen_t len = sizeof(addr);
    getsockname(listenFd_,
                reinterpret_cast<struct sockaddr *>(&addr), &len);
    port_ = ntohs(addr.sin_port);
}

TcpTransport::~TcpTransport()
{
    stop();
    if (acceptThread_.joinable())
        acceptThread_.join();
    reapFinished(true);
    if (listenFd_ >= 0)
        close(listenFd_);
}

void
TcpTransport::stop()
{
    stop_.store(true, std::memory_order_release);
}

void
TcpTransport::reapFinished(bool join_all)
{
    std::vector<std::unique_ptr<Conn>> done;
    {
        std::lock_guard<std::mutex> lock(connsMutex_);
        if (join_all) {
            done.swap(conns_);
        } else {
            auto it = conns_.begin();
            while (it != conns_.end()) {
                if ((*it)->done.load(std::memory_order_acquire)) {
                    done.push_back(std::move(*it));
                    it = conns_.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }
    for (auto &c : done)
        if (c->thread.joinable())
            c->thread.join();
}

void
TcpTransport::serveAsync()
{
    acceptThread_ = std::thread([this] { serve(); });
}

void
TcpTransport::serve()
{
    while (!stop_.load(std::memory_order_acquire) &&
           !server_.draining()) {
        // Join connections that finished since the last pass so the
        // thread set tracks live connections, not lifetime accepts.
        reapFinished(false);
        struct pollfd pfd = {listenFd_, POLLIN, 0};
        const int rc = poll(&pfd, 1, 100);
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0)
            continue;
        struct sockaddr_in peer = {};
        socklen_t len = sizeof(peer);
        const int fd = accept(
            listenFd_, reinterpret_cast<struct sockaddr *>(&peer),
            &len);
        if (fd < 0)
            continue;
        ST_OBS_ADD("serve.tcp.accepted", 1);
        auto conn = std::make_unique<Conn>();
        Conn *c = conn.get();
        c->thread = std::thread([this, fd, c] {
            handleConnection(fd);
            c->done.store(true, std::memory_order_release);
        });
        std::lock_guard<std::mutex> lock(connsMutex_);
        conns_.push_back(std::move(conn));
    }
    reapFinished(true);
}

void
TcpTransport::handleConnection(int fd)
{
    std::mutex out_mutex;
    const auto put = [&](const std::string &line) {
        std::lock_guard<std::mutex> lock(out_mutex);
        return writeAll(fd, line);
    };

    // Client key: the peer address without the ephemeral port, so a
    // reconnect storm from one host accumulates backoff.
    struct sockaddr_in peer = {};
    socklen_t len = sizeof(peer);
    getpeername(fd, reinterpret_cast<struct sockaddr *>(&peer),
                &len);
    char host[INET_ADDRSTRLEN] = "unknown";
    inet_ntop(AF_INET, &peer.sin_addr, host, sizeof(host));

    StreamServer::OpenResult open = server_.openSession(host);
    if (!open.session) {
        put("busy retry_after_ms " +
            std::to_string(open.retryAfterMs) + " reason " +
            open.reason + "\n");
        close(fd);
        return;
    }
    std::shared_ptr<Session> session = open.session;
    std::thread writer(
        [&] { writerLoop(session, put); });

    FdLineReader reader(fd);
    std::string line;
    while (reader.next(line, [&] {
               return stop_.load(std::memory_order_acquire) ||
                      server_.draining();
           })) {
        if (!dispatchLine(server_, session, line, put))
            break;
    }
    session->endInput(steadyNowMs());
    writer.join();
    shutdown(fd, SHUT_RDWR);
    close(fd);
}

} // namespace st::serve
