/**
 * @file
 * Per-volley latency decomposition for the serving layer
 * (DESIGN.md Sec. 13).
 *
 * Every delivered volley is stamped on the steady clock (microsecond
 * resolution, same domain as steadyNowMs()) at five points of its
 * journey, defining four stage deltas plus the total:
 *
 *   ingress  — parse/frame complete, volley queued on the ingress ring
 *   admit    — the batcher popped it into a batch
 *   m-enter  — the model call containing it began
 *   m-exit   — that model call returned
 *   egress   — the result line was queued on the egress ring
 *
 *   queue  = admit  - ingress   (ingress ring + batcher pickup)
 *   batch  = enter  - admit     (batch assembly + chaos perturbation)
 *   model  = exit   - enter     (inference proper)
 *   egress = egress - exit      (demux + result formatting)
 *   total  = egress - ingress
 *
 * Deltas land in fixed-size power-of-two histograms (same bucketing as
 * obs::Histogram, same log-linear percentile estimator), kept per
 * session and server-wide; healthJson() reports p50/p90/p99/p99.9 for
 * each. Only *delivered* volleys are recorded — drops are visible
 * through their own counters, not mixed into latency tails.
 *
 * The stamping sites compile out under ST_OBS_ENABLED=0 (the
 * kLatencyEnabled branches are constant-false); the snapshot plumbing
 * always compiles, so the health schema is stable across both builds
 * (counts are simply zero).
 */

#ifndef ST_SERVE_LATENCY_HPP
#define ST_SERVE_LATENCY_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"

namespace st::serve {

/** Whether per-volley stamping is compiled in. */
inline constexpr bool kLatencyEnabled = ST_OBS_ENABLED != 0;

/** Microseconds on the steady clock (finer cousin of steadyNowMs). */
uint64_t steadyNowUs();

/** The five steady-clock stamps of one volley's journey. */
struct VolleyStamps
{
    uint64_t ingressUs = 0;
    uint64_t admitUs = 0;
    uint64_t modelEnterUs = 0;
    uint64_t modelExitUs = 0;
    uint64_t egressUs = 0;
};

/** Stage deltas derived from the stamps (see file comment). */
inline constexpr size_t kStageCount = 5;

/** Stage name for index 0..kStageCount-1. */
const char *stageName(size_t stage);

/**
 * The per-stage deltas of @p s, in stageName order. Saturating: a
 * stamp pair whose clock reads ran backwards (never expected on one
 * steady clock, but cheap to guard) yields 0.
 */
std::array<uint64_t, kStageCount> stageDeltas(const VolleyStamps &s);

/** One stage's fixed-size power-of-two histogram. */
struct StageHist
{
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, obs::Histogram::kBuckets> buckets{};

    void
    record(uint64_t v)
    {
        ++count;
        sum += v;
        ++buckets[obs::Histogram::bucketOf(v)];
    }

    double
    percentile(double q) const
    {
        return obs::bucketQuantile(buckets, q);
    }
};

/** Aggregated stage histograms (a copy, safe to serialize lock-free). */
struct LatencySnapshot
{
    std::array<StageHist, kStageCount> stages;

    /**
     * `{"queue": {"count": N, "p50": ..., "p90": ..., "p99": ...,
     * "p999": ...}, "batch": {...}, ...}` in stageName order.
     */
    void writeJson(std::ostream &out) const;
    std::string toJson() const;
};

/** Thread-safe accumulator; one per session plus one per server. */
class LatencyRecorder
{
  public:
    void
    record(const VolleyStamps &stamps)
    {
        const std::array<uint64_t, kStageCount> d =
            stageDeltas(stamps);
        std::lock_guard<std::mutex> guard(mutex_);
        for (size_t i = 0; i < kStageCount; ++i)
            agg_.stages[i].record(d[i]);
    }

    LatencySnapshot
    snapshot() const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return agg_;
    }

    uint64_t
    recorded() const
    {
        std::lock_guard<std::mutex> guard(mutex_);
        return agg_.stages[0].count;
    }

  private:
    mutable std::mutex mutex_;
    LatencySnapshot agg_;
};

} // namespace st::serve

#endif // ST_SERVE_LATENCY_HPP
