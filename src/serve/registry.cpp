/**
 * @file
 * ModelRegistry + the ServeModel adapters over loaded STMF models.
 */

#include "serve/registry.hpp"

#include <dirent.h>

#include <stdexcept>
#include <utility>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/obs.hpp"

namespace st::serve {

namespace {

/** Session id the canary probe runs under; never a real session (the
 *  server allocates ids from 1 upward), so a stateful candidate's
 *  canary state is scoped to this key and dropped right after. */
constexpr uint64_t kCanarySession = ~0ULL;

} // namespace

ModelRegistry::ModelRegistry(std::shared_ptr<ServeModel> model,
                             model::ModelInfo info)
{
    auto version = std::make_shared<ModelVersion>();
    version->model = std::move(model);
    version->info = std::move(info);
    version->epoch = 1;
    current_ = std::move(version);
}

std::shared_ptr<const ModelVersion>
ModelRegistry::current() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
}

uint64_t
ModelRegistry::epoch() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_->epoch;
}

uint64_t
ModelRegistry::swapCount() const
{
    return swaps_.load(std::memory_order_relaxed);
}

uint64_t
ModelRegistry::failedSwapCount() const
{
    return failed_.load(std::memory_order_relaxed);
}

Status
ModelRegistry::swap(std::shared_ptr<ServeModel> candidate,
                    model::ModelInfo info)
{
    if (!candidate)
        return Status(StatusCode::InvalidArgument,
                      "swap: null candidate model");

    // One swap at a time; the canary runs under the lock so two racing
    // reloads cannot both probe against the same incumbent and publish
    // out of order.
    std::lock_guard<std::mutex> lock(mutex_);
    const std::shared_ptr<const ModelVersion> incumbent = current_;

    const Status verdict = [&]() -> Status {
        if (candidate->numInputs() != incumbent->model->numInputs())
            return Status(
                StatusCode::FailedPrecondition,
                "candidate input width " +
                    std::to_string(candidate->numInputs()) +
                    " does not match serving width " +
                    std::to_string(incumbent->model->numInputs()));
        BatchItem item;
        item.session = kCanarySession;
        item.seq = 0;
        item.volley = Volley(candidate->numInputs(), Time(0));
        try {
            std::vector<std::string> payloads = candidate->processBatch(
                std::span<const BatchItem>(&item, 1), 1);
            if (payloads.size() != 1)
                return Status(StatusCode::Internal,
                              "canary batch returned " +
                                  std::to_string(payloads.size()) +
                                  " payloads for 1 item");
        } catch (const std::exception &e) {
            return Status(StatusCode::FailedPrecondition,
                          std::string("canary volley failed: ") +
                              e.what());
        }
        candidate->endSession(kCanarySession);
        return Status::ok();
    }();

    if (!verdict.isOk()) {
        failed_.fetch_add(1, std::memory_order_relaxed);
        ST_OBS_ADD("model.swap_failed", 1);
        ST_LOG_WARN("model.registry",
                    "swap to \"" + info.id + "\" v" +
                        std::to_string(info.version) +
                        " rejected; incumbent v" +
                        std::to_string(incumbent->info.version) +
                        " (epoch " +
                        std::to_string(incumbent->epoch) +
                        ") keeps serving: " + verdict.str());
        obs::FlightRecorder::instance().record(
            "model.swap_failed", info.version, incumbent->epoch,
            verdict.str());
        return verdict;
    }

    auto next = std::make_shared<ModelVersion>();
    next->model = std::move(candidate);
    next->info = std::move(info);
    next->epoch = incumbent->epoch + 1;
    current_ = next;
    swaps_.fetch_add(1, std::memory_order_relaxed);
    ST_OBS_ADD("model.swap.ok", 1);
    ST_LOG_INFO("model.registry",
                "published \"" + next->info.id + "\" v" +
                    std::to_string(next->info.version) + " at epoch " +
                    std::to_string(next->epoch) +
                    "; in-flight batches finish on epoch " +
                    std::to_string(incumbent->epoch));
    obs::FlightRecorder::instance().record("model.swap",
                                           next->info.version,
                                           next->epoch);
    return Status::ok();
}

// --- PlanServeModel -------------------------------------------------

PlanServeModel::PlanServeModel(
    std::shared_ptr<const model::PlanModel> plan)
    : plan_(std::move(plan))
{
}

std::vector<std::string>
PlanServeModel::processBatch(std::span<const BatchItem> items,
                             size_t nthreads)
{
    (void)nthreads; // plan evaluation is cheap; serial on the batcher
    std::vector<std::string> payloads;
    payloads.reserve(items.size());
    for (const BatchItem &item : items) {
        // A width mismatch would read out of the volley's bounds in
        // the Input instructions; throwing poisons just this volley.
        if (item.volley.size() != plan_->numInputs())
            throw std::invalid_argument(
                "plan model: volley width " +
                std::to_string(item.volley.size()) + " != " +
                std::to_string(plan_->numInputs()));
        plan_->evaluate(item.volley, scratch_, out_);
        payloads.push_back(wireVolley(out_));
    }
    return payloads;
}

// --- loaded-model adapters ------------------------------------------

std::unique_ptr<ServeModel>
makeServeModel(const model::LoadedModel &loaded)
{
    if (loaded.tnn)
        return std::make_unique<TnnServeModel>(*loaded.tnn);
    if (loaded.plan)
        return std::make_unique<PlanServeModel>(loaded.plan);
    if (loaded.lsm)
        return std::make_unique<LsmAnomalyModel>(
            loaded.lsm->params, loaded.lsm->stepsPerVolley,
            loaded.lsm->emaAlpha);
    return nullptr;
}

Status
pickLatestModel(const std::string &dir, std::string &path_out,
                Status *skipped)
{
    if (skipped != nullptr)
        *skipped = Status::ok();
    DIR *d = ::opendir(dir.c_str());
    if (d == nullptr)
        return Status(StatusCode::NotFound,
                      "cannot open model directory " + dir);
    std::string best;
    uint64_t best_version = 0;
    bool found = false;
    const auto noteSkip = [&](const std::string &path,
                              const Status &why) {
        if (skipped != nullptr && skipped->isOk())
            *skipped = Status(why.code(),
                              path + ": " + why.message(),
                              why.context());
    };
    while (struct dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        constexpr std::string_view suffix = ".stmf";
        if (name.size() <= suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        const std::string path = dir + "/" + name;
        model::StmfFile file;
        if (Status open =
                model::StmfFile::open(path, model::LoadMode::Copy,
                                      file);
            !open.isOk()) {
            noteSkip(path, open); // a corrupt sibling never blocks
            continue;
        }
        model::ModelInfo info;
        if (Status meta = model::decodeMeta(file, info);
            !meta.isOk()) {
            noteSkip(path, meta);
            continue;
        }
        if (!found || info.version > best_version ||
            (info.version == best_version && path > best)) {
            found = true;
            best_version = info.version;
            best = path;
        }
    }
    ::closedir(d);
    if (!found)
        return Status(StatusCode::NotFound,
                      "no valid .stmf model in " + dir);
    path_out = best;
    return Status::ok();
}

} // namespace st::serve
