/**
 * @file
 * Model abstraction behind the streaming server.
 *
 * The server multiplexes many sessions into one batch call, so a model
 * sees (session, seq, volley) triples, not raw volleys: a stateless
 * model (a trained feedforward TNN) ignores the ids and fans the batch
 * across the thread pool; a stateful model (the LSM reservoir, whose
 * fading activity *is* the anomaly context) keys its per-session state
 * on the session id and relies on the server's guarantee that one
 * session's items arrive in seq order across calls.
 *
 * Results are wire payload strings (the text after "volley <seq> " on
 * the wire) so heterogeneous models — output volleys, anomaly scores —
 * share one transport.
 */

#ifndef ST_SERVE_MODEL_HPP
#define ST_SERVE_MODEL_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "tnn/lsm.hpp"
#include "tnn/tnn_network.hpp"
#include "tnn/volley.hpp"

namespace st::serve {

/** One unit of batched work: a session's next volley in seq order. */
struct BatchItem
{
    uint64_t session = 0;
    uint64_t seq = 0;
    Volley volley;
    /** Latency stamps carried along (0 when ST_OBS_ENABLED=0). */
    uint64_t ingressUs = 0;
    uint64_t admitUs = 0;
};

/** Wire payload encoding of a volley: "t0 t1 inf t3 ...". */
std::string wireVolley(std::span<const Time> v);

/** The inference engine a StreamServer serves. */
class ServeModel
{
  public:
    virtual ~ServeModel() = default;

    /** Expected volley width (the session's `addresses` count). */
    virtual size_t numInputs() const = 0;

    /** Short name for the health snapshot ("tnn", "lsm"). */
    virtual std::string name() const = 0;

    /**
     * Process one batch; called from the server's single batcher
     * thread. Must return one payload per item, in item order. Items
     * of the same session appear in seq order within and across
     * calls. A throw poisons the offending volley only: for a
     * transactional() model the server retries the batch item-by-item;
     * for a stateful model the server feeds one item per call in the
     * first place (see transactional()).
     */
    virtual std::vector<std::string>
    processBatch(std::span<const BatchItem> items, size_t nthreads) = 0;

    /**
     * True when a throwing processBatch leaves no observable state
     * behind, making a whole-batch retry safe. Models that commit
     * per-session state as they iterate (the LSM reservoir advances on
     * every item) must return false: the server then feeds them one
     * item per call, so a mid-batch throw can never cause earlier —
     * already committed — items to be re-applied. Defaults to false,
     * the safe choice for an unknown model.
     */
    virtual bool transactional() const { return false; }

    /** The session ended; drop any per-session state. */
    virtual void
    endSession(uint64_t session)
    {
        (void)session;
    }
};

/**
 * A trained feedforward TNN: stateless, so the whole mixed-session
 * batch goes through TnnNetwork::processBatch on the shared pool.
 * Payload: the final layer's output volley.
 */
class TnnServeModel : public ServeModel
{
  public:
    explicit TnnServeModel(TnnNetwork net);

    size_t numInputs() const override { return numInputs_; }
    std::string name() const override { return "tnn"; }
    bool transactional() const override { return true; } // stateless
    std::vector<std::string>
    processBatch(std::span<const BatchItem> items,
                 size_t nthreads) override;

    const TnnNetwork &network() const { return net_; }

  private:
    TnnNetwork net_;
    size_t numInputs_;
};

/**
 * NAB-style streaming anomaly detection on an LSM reservoir: each
 * session owns a reservoir instance (deterministically seeded from the
 * shared params) plus an exponential moving average of per-volley
 * reservoir activity; the anomaly score of a volley is its relative
 * deviation from that session's own recent history — unsupervised,
 * per-stream, exactly the NAB setting. Payload:
 * "score <milli> spikes <n>".
 */
class LsmAnomalyModel : public ServeModel
{
  public:
    /** @p steps_per_volley: reservoir steps run per window. */
    LsmAnomalyModel(const ReservoirParams &params,
                    size_t steps_per_volley, double ema_alpha = 0.2);

    size_t numInputs() const override { return params_.numInputs; }
    std::string name() const override { return "lsm"; }
    std::vector<std::string>
    processBatch(std::span<const BatchItem> items,
                 size_t nthreads) override;
    void endSession(uint64_t session) override;

    /** Sessions currently holding reservoir state (for tests). */
    size_t statefulSessions() const { return state_.size(); }

  private:
    struct SessionState
    {
        std::unique_ptr<Reservoir> reservoir;
        double emaSpikes = -1.0; //!< <0 until the first volley
    };

    ReservoirParams params_;
    size_t stepsPerVolley_;
    double emaAlpha_;
    std::unordered_map<uint64_t, SessionState> state_;
};

} // namespace st::serve

#endif // ST_SERVE_MODEL_HPP
