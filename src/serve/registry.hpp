/**
 * @file
 * ModelRegistry: hot-swappable model versions under live traffic.
 *
 * The registry owns the *published* model: an immutable ModelVersion
 * (engine + identity + swap epoch) behind a shared_ptr. The batcher
 * pins the current version for the duration of one batch, so a swap
 * never yanks an engine out from under in-flight work — the old
 * version lives until its last pinned batch releases it (refcounted
 * epochs), while every batch formed after the publish sees the new
 * one.
 *
 * swap() is gated by a canary: the candidate must match the incumbent
 * input width (live sessions already negotiated their volley width)
 * and must survive a probe volley through its own processBatch before
 * anything is published. A failed canary changes nothing — the
 * incumbent keeps serving, `model.swap_failed` ticks, and the failure
 * is logged with the loader's contextual Status. Rollback is therefore
 * not an action but the absence of a publish.
 *
 * Concurrency: publication is a mutex-guarded shared_ptr store and
 * current() a mutex-guarded load — the uncontended path is a few
 * nanoseconds per *batch* (not per volley), TSan-clean, and free of
 * the platform lottery around std::atomic<shared_ptr>.
 */

#ifndef ST_SERVE_REGISTRY_HPP
#define ST_SERVE_REGISTRY_HPP

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "model/serialize.hpp"
#include "serve/model.hpp"

namespace st::serve {

/** One published (or retired) model version. Immutable once built. */
struct ModelVersion
{
    std::shared_ptr<ServeModel> model;
    model::ModelInfo info;
    /** Monotone swap epoch: 1 for the boot model, +1 per publish. */
    uint64_t epoch = 0;
};

/** The swap-safe holder of the currently published model version. */
class ModelRegistry
{
  public:
    /** Seed with the boot model (epoch 1). @p model must be non-null. */
    ModelRegistry(std::shared_ptr<ServeModel> model,
                  model::ModelInfo info);

    /** Pin the published version (never null). */
    std::shared_ptr<const ModelVersion> current() const;

    /** Epoch of the published version. */
    uint64_t epoch() const;

    /** Successful swaps since boot (the boot publish not counted). */
    uint64_t swapCount() const;

    /** Canary-rejected swap attempts since boot. */
    uint64_t failedSwapCount() const;

    /**
     * Canary + publish: verify @p candidate against the incumbent
     * (input width) and probe one volley through it; on success
     * publish it as the next epoch, on failure leave the incumbent
     * untouched and return why. Thread-safe; concurrent swaps
     * serialize.
     */
    Status swap(std::shared_ptr<ServeModel> candidate,
                model::ModelInfo info);

  private:
    mutable std::mutex mutex_;
    std::shared_ptr<const ModelVersion> current_;
    std::atomic<uint64_t> swaps_{0};
    std::atomic<uint64_t> failed_{0};
};

/**
 * A stateless ServeModel over a loaded compiled-plan model. Volleys
 * evaluate on the instruction stream viewed in the STMF backing (the
 * plan holds its keepalive). processBatch runs on the batcher thread,
 * so one member scratch suffices.
 */
class PlanServeModel : public ServeModel
{
  public:
    explicit PlanServeModel(
        std::shared_ptr<const model::PlanModel> plan);

    size_t numInputs() const override { return plan_->numInputs(); }
    std::string name() const override { return "plan"; }
    bool transactional() const override { return true; } // stateless
    std::vector<std::string>
    processBatch(std::span<const BatchItem> items,
                 size_t nthreads) override;

  private:
    std::shared_ptr<const model::PlanModel> plan_;
    EvalScratch scratch_;
    std::vector<Time> out_;
};

/**
 * Wrap a loadModel() result in the matching ServeModel (TNN batch
 * engine, plan executor, or per-session LSM anomaly scorer). Never
 * null for a LoadedModel produced by a successful loadModel().
 */
std::unique_ptr<ServeModel>
makeServeModel(const model::LoadedModel &loaded);

/**
 * Pick the serving candidate from @p dir: the readable *.stmf with
 * the highest META model version (ties to the lexicographically last
 * path, so "v2b.stmf" beats "v2.stmf" at equal versions). Files that
 * fail container validation are skipped — a half-corrupt directory
 * still yields the best valid model — but the first skip's contextual
 * Status is reported through @p skipped (left ok when every file
 * validated), so an operator's reload reply can say *why* a file was
 * passed over. NotFound when no candidate validates.
 */
Status pickLatestModel(const std::string &dir, std::string &path_out,
                       Status *skipped = nullptr);

} // namespace st::serve

#endif // ST_SERVE_REGISTRY_HPP
