#include "neuron/srm0_network.hpp"

#include <stdexcept>

#include "neuron/sorting.hpp"

namespace st {

void
emitResponseFanout(Network &net, NodeId x, const ResponseFunction &r,
                   std::vector<NodeId> &ups, std::vector<NodeId> &downs)
{
    for (Time::rep t : r.upSteps())
        ups.push_back(t == 0 ? x : net.inc(x, t));
    for (Time::rep t : r.downSteps())
        downs.push_back(t == 0 ? x : net.inc(x, t));
}

Network
buildSrm0Network(const std::vector<ResponseFunction> &synapses,
                 ResponseFunction::Amp threshold)
{
    if (synapses.empty())
        throw std::invalid_argument("buildSrm0Network: needs >= 1 synapse");
    if (threshold < 1)
        throw std::invalid_argument("buildSrm0Network: threshold >= 1");

    Network net(synapses.size());

    // Fig. 11: fan each input out into its unit up/down step taps.
    std::vector<NodeId> ups, downs;
    for (size_t i = 0; i < synapses.size(); ++i)
        emitResponseFanout(net, net.input(i), synapses[i], ups, downs);

    const size_t theta = static_cast<size_t>(threshold);
    if (ups.size() < theta) {
        // Potential can never reach theta: the constant-inf neuron.
        NodeId never = net.config(INF);
        net.setLabel(never, "never-fires");
        net.markOutput(never);
        net.compile();
        return net;
    }

    // Fig. 12: sort all up taps and all down taps.
    std::vector<NodeId> up_sorted = emitBitonicSort(net, ups);
    std::vector<NodeId> down_sorted;
    if (!downs.empty())
        down_sorted = emitBitonicSort(net, downs);

    // Rank comparison: the potential first reaches theta at the earliest
    // up time U[theta-1+i] that precedes the (i+1)-th down time D[i]
    // (0-indexed ascending). Missing down ranks are "no spike".
    NodeId inf_pad = net.config(INF);
    net.setLabel(inf_pad, "pad");
    std::vector<NodeId> crossings;
    for (size_t i = 0; theta - 1 + i < up_sorted.size(); ++i) {
        NodeId up = up_sorted[theta - 1 + i];
        NodeId down = i < down_sorted.size() ? down_sorted[i] : inf_pad;
        crossings.push_back(net.lt(up, down));
    }

    NodeId out = crossings.size() == 1
                     ? crossings[0]
                     : net.min(std::span<const NodeId>(crossings));
    net.setLabel(out, "spike");
    net.markOutput(out);
    // Compile up front: callers evaluate these networks volley after
    // volley, so the plan build should not land on the first volley.
    net.compile();
    return net;
}

Srm0NetworkStats
srm0NetworkStats(const std::vector<ResponseFunction> &synapses,
                 ResponseFunction::Amp threshold)
{
    Srm0NetworkStats stats;
    size_t ups = 0, downs = 0;
    for (const ResponseFunction &r : synapses) {
        ups += r.upSteps().size();
        downs += r.downSteps().size();
    }
    stats.upTaps = ups;
    stats.downTaps = downs;
    if (ups >= static_cast<size_t>(threshold)) {
        stats.comparators = bitonicComparatorCount(ups) +
                            (downs ? bitonicComparatorCount(downs) : 0);
        stats.ltBlocks = ups - static_cast<size_t>(threshold) + 1;
    }
    Network net = buildSrm0Network(synapses, threshold);
    stats.totalNodes = net.size();
    stats.depth = net.depth();
    return stats;
}

} // namespace st
