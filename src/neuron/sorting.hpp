/**
 * @file
 * Bitonic sorting networks over the s-t algebra (paper Sec. IV.A.1,
 * Fig. 10).
 *
 * A compare-exchange element is one min block plus one max block; Batcher's
 * bitonic merge sort wires O(n log^2 n) of them into a data-independent
 * sorting network. Because min and max are causal and invariant, the whole
 * sorter is a (multi-output) s-t function — the paper's stepping stone to
 * the SRM0 neuron construction.
 *
 * Sorting is ascending; inf values ("no spike") sink to the high outputs.
 * Arbitrary input counts are supported by padding to a power of two with
 * inf-valued config nodes.
 */

#ifndef ST_NEURON_SORTING_HPP
#define ST_NEURON_SORTING_HPP

#include <cstddef>
#include <vector>

#include "core/network.hpp"

namespace st {

/**
 * Emit a bitonic sorting network inside @p net.
 *
 * @param net   Target network (taps may be any existing nodes).
 * @param taps  Nodes carrying the values to sort (any count >= 1).
 * @return One node per input, carrying the sorted (ascending) values.
 */
std::vector<NodeId> emitBitonicSort(Network &net,
                                    std::vector<NodeId> taps);

/**
 * A standalone n-input, n-output sorting network (outputs ascending).
 */
Network bitonicSortNetwork(size_t n);

/** Comparator (min+max pair) count of a width-n bitonic sorter. */
size_t bitonicComparatorCount(size_t n);

/** Compare-exchange stage depth of a width-n bitonic sorter. */
size_t bitonicStageDepth(size_t n);

} // namespace st

#endif // ST_NEURON_SORTING_HPP
