#include "neuron/wta.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/algebra.hpp"

namespace st {

std::vector<NodeId>
emitWta(Network &net, std::span<const NodeId> taps, Time::rep tau)
{
    if (taps.empty())
        throw std::invalid_argument("emitWta: no taps");
    if (tau == 0)
        throw std::invalid_argument("emitWta: tau must be >= 1");
    NodeId first = net.min(taps);
    net.setLabel(first, "t_min");
    NodeId gate = net.inc(first, tau);
    std::vector<NodeId> out;
    out.reserve(taps.size());
    for (NodeId tap : taps)
        out.push_back(net.lt(tap, gate));
    return out;
}

Network
wtaNetwork(size_t n, Time::rep tau)
{
    Network net(n);
    std::vector<NodeId> taps;
    taps.reserve(n);
    for (size_t i = 0; i < n; ++i)
        taps.push_back(net.input(i));
    for (NodeId id : emitWta(net, taps, tau))
        net.markOutput(id);
    return net;
}

std::vector<Time>
applyWta(std::span<const Time> volley, Time::rep tau)
{
    std::vector<Time> out(volley.begin(), volley.end());
    applyWtaInPlace(out, tau);
    return out;
}

void
applyWtaInPlace(std::vector<Time> &volley, Time::rep tau)
{
    Time gate = minOf(volley) + tau;
    for (Time &x : volley)
        x = tlt(x, gate);
}

std::vector<Time>
applyKWta(std::span<const Time> volley, size_t k)
{
    std::vector<Time> out(volley.begin(), volley.end());
    applyKWtaInPlace(out, k);
    return out;
}

void
applyKWtaInPlace(std::vector<Time> &volley, size_t k)
{
    if (k >= spikeCount(volley))
        return;
    // Order lines by (time, index); silence everything past rank k.
    // The rank scratch is per-thread so batch lanes never contend and
    // the steady state allocates nothing.
    static thread_local std::vector<size_t> order;
    order.resize(volley.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return volley[a] < volley[b];
    });
    for (size_t rank = k; rank < order.size(); ++rank)
        volley[order[rank]] = INF;
}

size_t
spikeCount(std::span<const Time> volley)
{
    return static_cast<size_t>(
        std::count_if(volley.begin(), volley.end(),
                      [](Time t) { return t.isFinite(); }));
}

} // namespace st
