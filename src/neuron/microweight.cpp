#include "neuron/microweight.hpp"

#include <stdexcept>

#include "neuron/sorting.hpp"

namespace st {

NodeId
emitMicroWeightGate(Network &net, NodeId x, NodeId mu)
{
    // lt(x, mu): mu = inf passes x; mu = 0 silences the tap.
    return net.lt(x, mu);
}

ProgrammableSynapse::ProgrammableSynapse(
    Network &net, NodeId x, std::vector<ResponseFunction> family)
    : family_(std::move(family))
{
    if (family_.empty())
        throw std::invalid_argument("ProgrammableSynapse: empty family");

    for (size_t k = 1; k < family_.size(); ++k) {
        // The level-k delta: what enabling mu_k adds on top of level k-1.
        ResponseFunction delta =
            family_[k].plus(family_[k - 1].negated());
        NodeId mu = net.config(0_t); // start disabled (weight 0)
        net.setLabel(mu, "mu" + std::to_string(k));
        mus_.push_back(mu);
        for (Time::rep t : delta.upSteps()) {
            NodeId tap = t == 0 ? x : net.inc(x, t);
            upTaps_.push_back(emitMicroWeightGate(net, tap, mu));
        }
        for (Time::rep t : delta.downSteps()) {
            NodeId tap = t == 0 ? x : net.inc(x, t);
            downTaps_.push_back(emitMicroWeightGate(net, tap, mu));
        }
    }
    // Weight level 0 may itself be a nonzero response (always active).
    for (Time::rep t : family_[0].upSteps())
        upTaps_.push_back(t == 0 ? x : net.inc(x, t));
    for (Time::rep t : family_[0].downSteps())
        downTaps_.push_back(t == 0 ? x : net.inc(x, t));
}

void
ProgrammableSynapse::setWeight(Network &net, size_t w)
{
    if (w > maxWeight())
        throw std::out_of_range("ProgrammableSynapse: weight out of range");
    for (size_t k = 0; k < mus_.size(); ++k)
        net.setConfig(mus_[k], k < w ? INF : 0_t);
    weight_ = w;
}

ProgrammableSrm0::ProgrammableSrm0(size_t num_inputs,
                                   std::vector<ResponseFunction> family,
                                   ResponseFunction::Amp threshold)
    : net_(num_inputs)
{
    if (num_inputs == 0)
        throw std::invalid_argument("ProgrammableSrm0: needs inputs");
    if (threshold < 1)
        throw std::invalid_argument("ProgrammableSrm0: threshold >= 1");

    std::vector<NodeId> ups, downs;
    synapses_.reserve(num_inputs);
    for (size_t i = 0; i < num_inputs; ++i) {
        synapses_.emplace_back(net_, net_.input(i), family);
        const auto &syn = synapses_.back();
        ups.insert(ups.end(), syn.upTaps().begin(), syn.upTaps().end());
        downs.insert(downs.end(), syn.downTaps().begin(),
                     syn.downTaps().end());
    }

    const size_t theta = static_cast<size_t>(threshold);
    if (ups.size() < theta) {
        NodeId never = net_.config(INF);
        net_.markOutput(never);
        return;
    }

    std::vector<NodeId> up_sorted = emitBitonicSort(net_, ups);
    std::vector<NodeId> down_sorted;
    if (!downs.empty())
        down_sorted = emitBitonicSort(net_, downs);

    NodeId inf_pad = net_.config(INF);
    std::vector<NodeId> crossings;
    for (size_t i = 0; theta - 1 + i < up_sorted.size(); ++i) {
        NodeId up = up_sorted[theta - 1 + i];
        NodeId down = i < down_sorted.size() ? down_sorted[i] : inf_pad;
        crossings.push_back(net_.lt(up, down));
    }
    NodeId out = crossings.size() == 1
                     ? crossings[0]
                     : net_.min(std::span<const NodeId>(crossings));
    net_.markOutput(out);
}

void
ProgrammableSrm0::setWeight(size_t synapse, size_t w)
{
    synapses_.at(synapse).setWeight(net_, w);
}

size_t
ProgrammableSrm0::weight(size_t synapse) const
{
    return synapses_.at(synapse).weight();
}

size_t
ProgrammableSrm0::maxWeight() const
{
    return synapses_.front().maxWeight();
}

Time
ProgrammableSrm0::fire(std::span<const Time> inputs) const
{
    return net_.evaluate(inputs)[0];
}

std::vector<ResponseFunction>
scaledBiexpFamily(size_t max_weight, double tau_slow, double tau_fast)
{
    std::vector<ResponseFunction> family;
    family.reserve(max_weight + 1);
    family.emplace_back(); // weight 0: silent synapse
    for (size_t w = 1; w <= max_weight; ++w) {
        family.push_back(ResponseFunction::biexponential(
            static_cast<ResponseFunction::Amp>(w), tau_slow, tau_fast));
    }
    return family;
}

std::vector<ResponseFunction>
scaledStepFamily(size_t max_weight)
{
    std::vector<ResponseFunction> family;
    family.reserve(max_weight + 1);
    family.emplace_back();
    for (size_t w = 1; w <= max_weight; ++w) {
        family.push_back(ResponseFunction::step(
            static_cast<ResponseFunction::Amp>(w)));
    }
    return family;
}

} // namespace st
