/**
 * @file
 * Reference (numerical) SRM0 spiking neuron (paper Sec. II.A, Fig. 1).
 *
 * This is the neuroscience-style model: each input spike x_i launches a
 * weighted response function; responses are summed into the body
 * potential; the neuron emits its (single) output spike the first time the
 * potential reaches the threshold theta.
 *
 * The reference model is deliberately independent of the s-t network
 * machinery: it sums integer amplitude samples on a discrete timeline.
 * The Fig. 12 construction (srm0_network.hpp) is validated against it —
 * they must agree on every input volley, which is this reproduction's
 * central cross-domain check.
 */

#ifndef ST_NEURON_SRM0_REFERENCE_HPP
#define ST_NEURON_SRM0_REFERENCE_HPP

#include <span>
#include <vector>

#include "core/time.hpp"
#include "neuron/response.hpp"

namespace st {

/**
 * A numerical SRM0 neuron.
 *
 * Synapse i is described by an already-weighted response function (the
 * synaptic weight scales the amplitude, per Fig. 1); inhibitory synapses
 * simply use negative responses.
 */
class Srm0Neuron
{
  public:
    /**
     * @param synapses   One (weighted) response function per input.
     * @param threshold  Firing threshold theta in amplitude units (>= 1).
     */
    Srm0Neuron(std::vector<ResponseFunction> synapses,
               ResponseFunction::Amp threshold);

    /** Number of inputs. */
    size_t arity() const { return synapses_.size(); }

    /** The threshold theta. */
    ResponseFunction::Amp threshold() const { return threshold_; }

    /** Per-synapse response functions. */
    const std::vector<ResponseFunction> &synapses() const
    {
        return synapses_;
    }

    /**
     * Body potential at absolute time t for the given input volley:
     * sum over fired synapses of R_i(t - x_i).
     */
    ResponseFunction::Amp potentialAt(std::span<const Time> inputs,
                                      Time::rep t) const;

    /**
     * Output spike time: the first t at which the potential reaches
     * theta, or inf if the threshold is never crossed.
     */
    Time fire(std::span<const Time> inputs) const;

    /**
     * Full potential trajectory from the first input spike to the time
     * everything has settled (for plots and debugging). Empty if no
     * input spikes.
     */
    std::vector<ResponseFunction::Amp>
    trajectory(std::span<const Time> inputs) const;

  private:
    /** Latest time the potential can still change, given the inputs. */
    Time::rep settleTime(std::span<const Time> inputs) const;

    std::vector<ResponseFunction> synapses_;
    ResponseFunction::Amp threshold_;
};

} // namespace st

#endif // ST_NEURON_SRM0_REFERENCE_HPP
