/**
 * @file
 * Compound synapses and RBF-style temporal pattern detectors (paper
 * Sec. II.C, after Hopfield [23] and Natschlaeger & Ruf [41]).
 *
 * Hopfield's 1995 observation: multiple synaptic paths (delays) between
 * the same two neurons are a powerful temporal code — choose per-input
 * delays d_i so that a stored pattern p makes all delayed spikes
 * x_i + d_i coincide; a narrow response plus a high threshold then fires
 * only when the applied pattern matches the stored one (approximately a
 * radial basis function around p, with the response width setting the
 * radius).
 *
 * buildRbfDetector() realizes exactly that with the library's existing
 * machinery: per-input delay taps (the compound synapse), narrow
 * responses, and the Fig. 12 threshold construction — so the detector
 * is itself a pure {min, max, lt, inc} network, compilable to GRL.
 */

#ifndef ST_NEURON_COMPOUND_HPP
#define ST_NEURON_COMPOUND_HPP

#include <span>
#include <vector>

#include "core/network.hpp"
#include "neuron/response.hpp"
#include "neuron/srm0_reference.hpp"

namespace st {

/** Configuration of an RBF-style coincidence detector. */
struct RbfParams
{
    /**
     * Coincidence tolerance: a spike contributes for `width + 1` time
     * units after its (delayed) arrival. width = 0 demands exact
     * alignment; larger widths widen the acceptance radius.
     */
    Time::rep width = 1;
    /**
     * How many of the pattern's lines must coincide (the threshold).
     * 0 means "all lines carrying a spike in the stored pattern".
     */
    ResponseFunction::Amp required = 0;
};

/**
 * Per-input delays that align the stored pattern (the compound-synapse
 * "selected paths"): d_i = max_j(p_j) - p_i for finite entries.
 * Lines silent in the pattern get no path (empty response).
 */
std::vector<Time::rep> alignmentDelays(std::span<const Time> pattern);

/**
 * The reference-model form of the detector (for training loops and
 * cross-checks): an Srm0Neuron with per-input delayed box responses.
 */
Srm0Neuron rbfDetectorModel(std::span<const Time> pattern,
                            const RbfParams &params = {});

/**
 * The network form: inputs -> delay taps -> threshold construction.
 * Fires iff at least `required` of the stored pattern's lines coincide
 * within the tolerance window — i.e., the applied volley lies within
 * the detector's temporal radius of the stored pattern (up to a global
 * shift, by invariance).
 */
Network buildRbfDetector(std::span<const Time> pattern,
                         const RbfParams &params = {});

} // namespace st

#endif // ST_NEURON_COMPOUND_HPP
