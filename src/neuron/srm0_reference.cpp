#include "neuron/srm0_reference.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/algebra.hpp"

namespace st {

Srm0Neuron::Srm0Neuron(std::vector<ResponseFunction> synapses,
                       ResponseFunction::Amp threshold)
    : synapses_(std::move(synapses)), threshold_(threshold)
{
    if (synapses_.empty())
        throw std::invalid_argument("Srm0Neuron: needs >= 1 synapse");
    if (threshold < 1)
        throw std::invalid_argument("Srm0Neuron: threshold must be >= 1");
}

ResponseFunction::Amp
Srm0Neuron::potentialAt(std::span<const Time> inputs, Time::rep t) const
{
    if (inputs.size() != synapses_.size())
        throw std::invalid_argument("Srm0Neuron: arity mismatch");
    ResponseFunction::Amp sum = 0;
    for (size_t i = 0; i < inputs.size(); ++i) {
        Time x = inputs[i];
        if (x.isFinite() && x.value() <= t)
            sum += synapses_[i].at(t - x.value());
    }
    return sum;
}

Time::rep
Srm0Neuron::settleTime(std::span<const Time> inputs) const
{
    Time::rep settle = 0;
    for (size_t i = 0; i < inputs.size(); ++i) {
        if (inputs[i].isFinite())
            settle = std::max(settle,
                              inputs[i].value() + synapses_[i].tMax());
    }
    return settle;
}

Time
Srm0Neuron::fire(std::span<const Time> inputs) const
{
    Time first = minOf(inputs);
    if (first.isInf())
        return INF; // quiescent neuron: no input spikes, no output
    Time::rep settle = settleTime(inputs);
    // Past settle the potential is constant, so scanning up to settle
    // decides the outcome (covers non-leaky responses too).
    for (Time::rep t = first.value(); t <= settle; ++t) {
        if (potentialAt(inputs, t) >= threshold_)
            return Time(t);
    }
    return INF;
}

std::vector<ResponseFunction::Amp>
Srm0Neuron::trajectory(std::span<const Time> inputs) const
{
    std::vector<ResponseFunction::Amp> out;
    Time first = minOf(inputs);
    if (first.isInf())
        return out;
    Time::rep settle = settleTime(inputs);
    for (Time::rep t = first.value(); t <= settle; ++t)
        out.push_back(potentialAt(inputs, t));
    return out;
}

} // namespace st
