/**
 * @file
 * Winner-take-all lateral inhibition (paper Sec. IV.C, Fig. 15).
 *
 * Inhibitory networks act en masse: in TNNs the "winners" are the first
 * spikes of a volley and inhibition blanks the rest. Fig. 15 builds this
 * from primitives: a min block finds the first spike time, an inc block
 * delays it by tau, and per-line lt gates pass only spikes strictly
 * earlier than that — i.e., spikes within [t_min, t_min + tau).
 *
 * tau = 1 is the paper's 1-WTA (only relative-time-0 spikes survive);
 * larger tau widens the uninhibited window. applyWta() is the pure
 * functional counterpart, and applyKWta() the count-parameterized variant
 * ("first k spikes") the paper mentions, used by the TNN layers.
 */

#ifndef ST_NEURON_WTA_HPP
#define ST_NEURON_WTA_HPP

#include <cstddef>
#include <span>
#include <vector>

#include "core/network.hpp"

namespace st {

/**
 * Build the Fig. 15 WTA network: n inputs, n outputs; output i carries
 * input i iff it lies within tau of the volley's first spike.
 */
Network wtaNetwork(size_t n, Time::rep tau = 1);

/**
 * Emit WTA inline over existing nodes; returns one gated node per tap.
 */
std::vector<NodeId> emitWta(Network &net, std::span<const NodeId> taps,
                            Time::rep tau = 1);

/** Pure functional tau-WTA (same semantics as the network). */
std::vector<Time> applyWta(std::span<const Time> volley, Time::rep tau = 1);

/** In-place tau-WTA: identical semantics, no allocation. */
void applyWtaInPlace(std::vector<Time> &volley, Time::rep tau = 1);

/**
 * Behavioral k-WTA: keep the k earliest spikes, inhibiting the rest.
 * Ties beyond the k-th slot are broken by line index (lower wins),
 * mirroring a fixed-priority inhibitory interneuron.
 */
std::vector<Time> applyKWta(std::span<const Time> volley, size_t k);

/**
 * In-place k-WTA: identical semantics, reusing a per-thread rank
 * scratch instead of allocating a copy.
 */
void applyKWtaInPlace(std::vector<Time> &volley, size_t k);

/** Number of surviving (finite) spikes in a volley. */
size_t spikeCount(std::span<const Time> volley);

} // namespace st

#endif // ST_NEURON_WTA_HPP
