#include "neuron/compound.hpp"

#include <stdexcept>

#include "core/algebra.hpp"
#include "neuron/srm0_network.hpp"

namespace st {

namespace {

/** Box response: amplitude 1 on [delay, delay + width], 0 elsewhere. */
ResponseFunction
boxResponse(Time::rep delay, Time::rep width)
{
    std::vector<ResponseFunction::Amp> samples(delay + width + 2, 0);
    for (Time::rep t = delay; t <= delay + width; ++t)
        samples[t] = 1;
    return ResponseFunction(std::move(samples));
}

/** Shared setup: delays, responses and effective threshold. */
std::pair<std::vector<ResponseFunction>, ResponseFunction::Amp>
detectorPieces(std::span<const Time> pattern, const RbfParams &params)
{
    Time latest = maxFiniteOf(pattern);
    if (latest.isInf())
        throw std::invalid_argument("rbf detector: empty pattern");

    std::vector<ResponseFunction> synapses;
    synapses.reserve(pattern.size());
    ResponseFunction::Amp lines = 0;
    for (Time p : pattern) {
        if (p.isFinite()) {
            Time::rep delay = latest.value() - p.value();
            synapses.push_back(boxResponse(delay, params.width));
            ++lines;
        } else {
            synapses.emplace_back(); // no path for silent lines
        }
    }
    ResponseFunction::Amp theta =
        params.required > 0 ? params.required : lines;
    if (theta > lines)
        throw std::invalid_argument("rbf detector: required exceeds "
                                    "pattern lines");
    return {std::move(synapses), theta};
}

} // namespace

std::vector<Time::rep>
alignmentDelays(std::span<const Time> pattern)
{
    Time latest = maxFiniteOf(pattern);
    if (latest.isInf())
        throw std::invalid_argument("alignmentDelays: empty pattern");
    std::vector<Time::rep> delays(pattern.size(), 0);
    for (size_t i = 0; i < pattern.size(); ++i) {
        if (pattern[i].isFinite())
            delays[i] = latest.value() - pattern[i].value();
    }
    return delays;
}

Srm0Neuron
rbfDetectorModel(std::span<const Time> pattern, const RbfParams &params)
{
    auto [synapses, theta] = detectorPieces(pattern, params);
    return Srm0Neuron(std::move(synapses), theta);
}

Network
buildRbfDetector(std::span<const Time> pattern, const RbfParams &params)
{
    auto [synapses, theta] = detectorPieces(pattern, params);
    return buildSrm0Network(synapses, theta);
}

} // namespace st
