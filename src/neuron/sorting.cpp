#include "neuron/sorting.hpp"

#include <stdexcept>

namespace st {

namespace {

size_t
nextPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/**
 * Classic iterative bitonic sort: for each (k, j) pass, compare-exchange
 * lanes i and i^j, ascending iff bit k of i is clear.
 */
template <typename CompareExchange>
void
bitonicSchedule(size_t n, CompareExchange &&cex)
{
    for (size_t k = 2; k <= n; k <<= 1) {
        for (size_t j = k >> 1; j > 0; j >>= 1) {
            for (size_t i = 0; i < n; ++i) {
                size_t partner = i ^ j;
                if (partner > i) {
                    bool ascending = (i & k) == 0;
                    cex(i, partner, ascending);
                }
            }
        }
    }
}

} // namespace

std::vector<NodeId>
emitBitonicSort(Network &net, std::vector<NodeId> taps)
{
    if (taps.empty())
        throw std::invalid_argument("emitBitonicSort: no taps");
    const size_t n = taps.size();
    const size_t padded = nextPow2(n);
    // Pad with "no spike" constants; they sort to the top and the first
    // n outputs are the sorted real values.
    for (size_t i = n; i < padded; ++i)
        taps.push_back(net.config(INF));

    bitonicSchedule(padded, [&](size_t lo, size_t hi, bool ascending) {
        NodeId a = taps[lo], b = taps[hi];
        NodeId mn = net.min(a, b);
        NodeId mx = net.max(a, b);
        taps[lo] = ascending ? mn : mx;
        taps[hi] = ascending ? mx : mn;
    });

    taps.resize(n);
    return taps;
}

Network
bitonicSortNetwork(size_t n)
{
    Network net(n);
    std::vector<NodeId> taps;
    taps.reserve(n);
    for (size_t i = 0; i < n; ++i)
        taps.push_back(net.input(i));
    for (NodeId id : emitBitonicSort(net, std::move(taps)))
        net.markOutput(id);
    // Sorters are evaluated repeatedly; ship them pre-compiled.
    net.compile();
    return net;
}

size_t
bitonicComparatorCount(size_t n)
{
    size_t padded = nextPow2(n);
    size_t count = 0;
    bitonicSchedule(padded, [&](size_t, size_t, bool) { ++count; });
    return count;
}

size_t
bitonicStageDepth(size_t n)
{
    size_t padded = nextPow2(n);
    size_t depth = 0;
    for (size_t k = 2; k <= padded; k <<= 1)
        for (size_t j = k >> 1; j > 0; j >>= 1)
            ++depth;
    return depth;
}

} // namespace st
