/**
 * @file
 * Micro-weight configuration gates and programmable synaptic weights
 * (paper Sec. IV.B, Figs. 13 and 14).
 *
 * The primitive programming mechanism is an lt gate with a configuration
 * input mu: with mu = inf the data value passes, with mu = 0 the gate is
 * permanently quiet (Fig. 13). A synaptic weight in the range 0..W is
 * realized thermometer-style (Fig. 14): micro-weight mu_k enables the
 * *incremental* response steps between weight levels k-1 and k, so that
 * with mu_1..mu_w enabled the active taps sum to exactly the level-w
 * response function. Disabled taps read inf ("no event") and sort
 * harmlessly to the top of the Fig. 12 sorters, so a programmable SRM0
 * needs no structural change — only config rewrites.
 */

#ifndef ST_NEURON_MICROWEIGHT_HPP
#define ST_NEURON_MICROWEIGHT_HPP

#include <cstddef>
#include <vector>

#include "core/network.hpp"
#include "neuron/response.hpp"

namespace st {

/**
 * Emit the Fig. 13 primitive: a data tap gated by a micro-weight.
 * @return The gated node: passes @p x iff the config @p mu is inf.
 */
NodeId emitMicroWeightGate(Network &net, NodeId x, NodeId mu);

/**
 * A programmable synapse: one input line whose effective response
 * function is selected from a weight-indexed family via micro-weights.
 *
 * The family is a vector of response functions indexed by weight
 * (family[0] is usually the zero response). Construction emits, for each
 * level k >= 1, the delayed taps of the *delta* response
 * family[k] - family[k-1], each gated by that level's micro-weight; the
 * enabled deltas telescope to family[w].
 */
class ProgrammableSynapse
{
  public:
    /**
     * Emit the gated fanout into @p net.
     *
     * @param net     Target network.
     * @param x       Node carrying this synapse's input spike.
     * @param family  Response per weight level; size >= 1.
     */
    ProgrammableSynapse(Network &net, NodeId x,
                        std::vector<ResponseFunction> family);

    /** Largest selectable weight (family size - 1). */
    size_t maxWeight() const { return family_.size() - 1; }

    /** Number of micro-weight config nodes emitted. */
    size_t numMicroWeights() const { return mus_.size(); }

    /** Gated up-step taps (feed these to the up sorter). */
    const std::vector<NodeId> &upTaps() const { return upTaps_; }

    /** Gated down-step taps. */
    const std::vector<NodeId> &downTaps() const { return downTaps_; }

    /** Program the weight: enables micro-weights 1..w (thermometer). */
    void setWeight(Network &net, size_t w);

    /** Currently programmed weight. */
    size_t weight() const { return weight_; }

    /** The response family. */
    const std::vector<ResponseFunction> &family() const { return family_; }

  private:
    std::vector<ResponseFunction> family_;
    std::vector<NodeId> mus_;          //!< one config per level k >= 1
    std::vector<NodeId> upTaps_;
    std::vector<NodeId> downTaps_;
    size_t weight_ = 0;
};

/**
 * A complete SRM0 neuron with per-synapse programmable weights: the
 * Fig. 12 construction fed by Fig. 14 gated fanouts.
 *
 * All synapses share one response family (the common TNN arrangement:
 * the weight picks the amplitude of a fixed response shape).
 */
class ProgrammableSrm0
{
  public:
    /**
     * @param num_inputs  Number of synapses.
     * @param family      Weight-indexed response family shared by all.
     * @param threshold   Firing threshold theta (>= 1).
     */
    ProgrammableSrm0(size_t num_inputs,
                     std::vector<ResponseFunction> family,
                     ResponseFunction::Amp threshold);

    /** Program one synapse's weight (0..maxWeight()). */
    void setWeight(size_t synapse, size_t w);

    /** Current weight of a synapse. */
    size_t weight(size_t synapse) const;

    /** Largest selectable weight. */
    size_t maxWeight() const;

    /** Evaluate the spike time for an input volley. */
    Time fire(std::span<const Time> inputs) const;

    /** The underlying space-time network (for inspection/compilation). */
    const Network &network() const { return net_; }

  private:
    Network net_;
    std::vector<ProgrammableSynapse> synapses_;
};

/**
 * Convenience: an amplitude-scaled response family 0..max_weight built
 * from a unit shape (family[w] has peak w, same shape). Uses the
 * biexponential shape by default.
 */
std::vector<ResponseFunction>
scaledBiexpFamily(size_t max_weight, double tau_slow = 4.0,
                  double tau_fast = 1.0);

/** Step-response family: family[w] jumps by w at t = 0 (non-leaky). */
std::vector<ResponseFunction> scaledStepFamily(size_t max_weight);

} // namespace st

#endif // ST_NEURON_MICROWEIGHT_HPP
