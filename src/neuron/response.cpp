#include "neuron/response.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace st {

ResponseFunction::ResponseFunction(std::vector<Amp> samples)
    : samples_(std::move(samples))
{
    trim();
}

void
ResponseFunction::trim()
{
    // Canonical form: the last sample is the first point of the flat
    // tail, so drop trailing repeats (and a flat-zero response is empty).
    while (samples_.size() >= 2 &&
           samples_.back() == samples_[samples_.size() - 2]) {
        samples_.pop_back();
    }
    if (samples_.size() == 1 && samples_[0] == 0)
        samples_.clear();
}

ResponseFunction
ResponseFunction::biexponential(Amp peak, double tau_slow, double tau_fast)
{
    if (tau_fast >= tau_slow) {
        throw std::invalid_argument("biexponential: tau_fast must be < "
                                    "tau_slow");
    }
    if (peak == 0)
        return ResponseFunction();
    // Continuous peak of exp(-t/ts) - exp(-t/tf) occurs at
    // t* = ln(ts/tf) * ts*tf / (ts - tf).
    double ts = tau_slow, tf = tau_fast;
    double t_star = std::log(ts / tf) * ts * tf / (ts - tf);
    double curve_peak = std::exp(-t_star / ts) - std::exp(-t_star / tf);
    double scale = static_cast<double>(std::abs(peak)) / curve_peak;
    double sign = peak > 0 ? 1.0 : -1.0;

    std::vector<Amp> samples;
    for (Time::rep t = 0;; ++t) {
        double td = static_cast<double>(t);
        double v = scale * (std::exp(-td / ts) - std::exp(-td / tf));
        Amp q = static_cast<Amp>(sign * std::llround(v));
        samples.push_back(q);
        // Stop once decayed to 0 past the peak; the envelope is
        // monotonically decreasing after t*, so 0 here means 0 forever.
        if (q == 0 && td > t_star)
            break;
        if (t > 1u << 20)
            throw std::logic_error("biexponential: failed to decay");
    }
    return ResponseFunction(std::move(samples));
}

ResponseFunction
ResponseFunction::piecewiseLinear(Amp peak, Time::rep rise, Time::rep fall)
{
    if (rise == 0 || fall == 0)
        throw std::invalid_argument("piecewiseLinear: rise/fall must be "
                                    ">= 1");
    if (peak == 0)
        return ResponseFunction();
    std::vector<Amp> samples;
    double p = static_cast<double>(peak);
    for (Time::rep t = 0; t <= rise; ++t) {
        samples.push_back(static_cast<Amp>(
            std::llround(p * static_cast<double>(t) /
                         static_cast<double>(rise))));
    }
    for (Time::rep t = 1; t <= fall; ++t) {
        samples.push_back(static_cast<Amp>(
            std::llround(p * static_cast<double>(fall - t) /
                         static_cast<double>(fall))));
    }
    return ResponseFunction(std::move(samples));
}

ResponseFunction
ResponseFunction::step(Amp weight, Time::rep at)
{
    if (weight == 0)
        return ResponseFunction();
    std::vector<Amp> samples(at + 1, 0);
    samples[at] = weight;
    return ResponseFunction(std::move(samples));
}

ResponseFunction::Amp
ResponseFunction::at(Time::rep t) const
{
    if (samples_.empty())
        return 0;
    if (t >= samples_.size())
        return samples_.back();
    return samples_[t];
}

Time::rep
ResponseFunction::tMax() const
{
    return samples_.empty() ? 0 : samples_.size() - 1;
}

ResponseFunction::Amp
ResponseFunction::finalValue() const
{
    return samples_.empty() ? 0 : samples_.back();
}

ResponseFunction::Amp
ResponseFunction::peak() const
{
    Amp m = 0;
    for (Amp a : samples_)
        m = std::max(m, a);
    return m;
}

ResponseFunction::Amp
ResponseFunction::trough() const
{
    Amp m = 0;
    for (Amp a : samples_)
        m = std::min(m, a);
    return m;
}

bool
ResponseFunction::isZero() const
{
    return samples_.empty();
}

std::vector<Time::rep>
ResponseFunction::upSteps() const
{
    std::vector<Time::rep> steps;
    Amp prev = 0;
    for (size_t t = 0; t < samples_.size(); ++t) {
        for (Amp d = samples_[t] - prev; d > 0; --d)
            steps.push_back(t);
        prev = samples_[t];
    }
    return steps;
}

std::vector<Time::rep>
ResponseFunction::downSteps() const
{
    std::vector<Time::rep> steps;
    Amp prev = 0;
    for (size_t t = 0; t < samples_.size(); ++t) {
        for (Amp d = prev - samples_[t]; d > 0; --d)
            steps.push_back(t);
        prev = samples_[t];
    }
    return steps;
}

ResponseFunction
ResponseFunction::negated() const
{
    std::vector<Amp> samples = samples_;
    for (Amp &a : samples)
        a = -a;
    return ResponseFunction(std::move(samples));
}

ResponseFunction
ResponseFunction::plus(const ResponseFunction &other) const
{
    size_t n = std::max(samples_.size(), other.samples_.size());
    std::vector<Amp> samples(n);
    for (size_t t = 0; t < n; ++t)
        samples[t] = at(t) + other.at(t);
    return ResponseFunction(std::move(samples));
}

} // namespace st
