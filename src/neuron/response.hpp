/**
 * @file
 * Synaptic response functions (paper Sec. II.A Fig. 2, Sec. IV.A Fig. 11).
 *
 * A response function R(t) maps discretized time to integer amplitude
 * units: the change a single input spike induces in the neuron's body
 * potential. Per the paper's broad definition, the only constraints are
 * that R reaches a fixed final value after finite time t_max and stays
 * within finite bounds. A response is representable as a sequence of unit
 * up-steps and down-steps — precisely the form the Fig. 11 fanout/inc
 * network materializes and the Fig. 12 SRM0 construction consumes.
 *
 * Provided shapes:
 *  - biexponential: difference of two exponential decays (Fig. 2a),
 *    the biologically-based excitatory response;
 *  - piecewiseLinear: Maass's triangular approximation (Fig. 2b);
 *  - step: the non-leaky integrate-and-fire synapse used by most TNNs
 *    surveyed in Sec. II.C (potential jumps by w and stays);
 *  - arbitrary integer sample vectors.
 */

#ifndef ST_NEURON_RESPONSE_HPP
#define ST_NEURON_RESPONSE_HPP

#include <cstdint>
#include <vector>

#include "core/time.hpp"

namespace st {

/**
 * A discretized response function.
 *
 * Stored as amplitude samples A(0), A(1), ..., A(t_max); for t > t_max
 * the amplitude stays at the final sample (the paper's fixed value c).
 * The implicit pre-spike amplitude A(-1) is 0, so A(0) != 0 means steps
 * at t = 0.
 */
class ResponseFunction
{
  public:
    /** Amplitude unit type (positive = excitatory contribution). */
    using Amp = int32_t;

    /** An empty response (always 0; contributes nothing). */
    ResponseFunction() = default;

    /** Construct from explicit samples A(0..t_max). */
    explicit ResponseFunction(std::vector<Amp> samples);

    /**
     * Biologically-based biexponential response (Fig. 2a), discretized.
     *
     * R(t) ~ peak * (exp(-t/tau_slow) - exp(-t/tau_fast)) / max, rounded
     * to integers, truncated once it decays to 0 for good.
     *
     * @param peak      Peak amplitude in units (the synaptic weight).
     * @param tau_slow  Membrane-leak decay constant (time units).
     * @param tau_fast  Synaptic-conductance decay constant; must be
     *                  strictly less than tau_slow.
     */
    static ResponseFunction biexponential(Amp peak, double tau_slow = 4.0,
                                          double tau_fast = 1.0);

    /**
     * Piecewise-linear approximation (Fig. 2b): ramp from 0 to @p peak
     * over @p rise steps, then back to 0 over @p fall steps.
     */
    static ResponseFunction piecewiseLinear(Amp peak, Time::rep rise,
                                            Time::rep fall);

    /**
     * Non-leaky step response: potential jumps by @p weight at t = @p at
     * and never decays (final value = weight).
     */
    static ResponseFunction step(Amp weight, Time::rep at = 0);

    /** Amplitude at time t (>= 0); flat at the final value past t_max. */
    Amp at(Time::rep t) const;

    /** Last time the amplitude changes (0 for constant/empty). */
    Time::rep tMax() const;

    /** The fixed value c the response settles at. */
    Amp finalValue() const;

    /** Largest amplitude reached (>= 0; 0 for empty). */
    Amp peak() const;

    /** Smallest amplitude reached (<= 0; 0 for empty). */
    Amp trough() const;

    /** True iff there are no steps at all. */
    bool isZero() const;

    /**
     * Times of unit up-steps, in nondecreasing order with multiplicity:
     * a +2 jump at t contributes t twice. These are the inc constants of
     * the Fig. 11 fanout network's "u" taps.
     */
    std::vector<Time::rep> upSteps() const;

    /** Times of unit down-steps (the "d" taps), with multiplicity. */
    std::vector<Time::rep> downSteps() const;

    /** Polarity-flipped copy (models an inhibitory synapse). */
    ResponseFunction negated() const;

    /** Sum of this and another response (for composing compound taps). */
    ResponseFunction plus(const ResponseFunction &other) const;

    /** Raw samples (A(0..t_max)). */
    const std::vector<Amp> &samples() const { return samples_; }

    bool operator==(const ResponseFunction &other) const = default;

  private:
    /** Drop trailing samples equal to their predecessor (canonical). */
    void trim();

    std::vector<Amp> samples_;
};

} // namespace st

#endif // ST_NEURON_RESPONSE_HPP
