/**
 * @file
 * SRM0 neurons built from space-time primitives (paper Sec. IV.A,
 * Figs. 11 and 12).
 *
 * The construction: each input's response function becomes a fanout of
 * inc blocks — one tap per unit up-step and one per unit down-step
 * (Fig. 11). All up taps (from all inputs) feed one bitonic sorter, all
 * down taps another. A rank of lt blocks then compares the (theta+i)-th
 * sorted up time against the (i+1)-th sorted down time: the first time
 * the number of up steps leads the number of down steps by theta is the
 * threshold-crossing — i.e., the output spike time (Fig. 12). A final min
 * collects the lt outputs.
 *
 * buildSrm0Network() returns a single-output network that provably (see
 * tests) computes exactly Srm0Neuron::fire for the same responses and
 * threshold.
 */

#ifndef ST_NEURON_SRM0_NETWORK_HPP
#define ST_NEURON_SRM0_NETWORK_HPP

#include <vector>

#include "core/network.hpp"
#include "neuron/response.hpp"

namespace st {

/**
 * Emit the Fig. 11 fanout/increment network for one input tap.
 *
 * @param net  Target network.
 * @param x    Node carrying the input spike.
 * @param r    The response function.
 * @param ups  Out: one node per unit up-step (x delayed by the step time).
 * @param downs Out: one node per unit down-step.
 */
void emitResponseFanout(Network &net, NodeId x, const ResponseFunction &r,
                        std::vector<NodeId> &ups,
                        std::vector<NodeId> &downs);

/**
 * Build the complete Fig. 12 SRM0 network.
 *
 * @param synapses   One (weighted) response function per input.
 * @param threshold  Firing threshold theta (>= 1).
 * @return A network with synapses.size() inputs and one output carrying
 *         the neuron's spike time (inf = never fires).
 */
Network buildSrm0Network(const std::vector<ResponseFunction> &synapses,
                         ResponseFunction::Amp threshold);

/** Size accounting for the construction (used by bench_fig12). */
struct Srm0NetworkStats
{
    size_t upTaps = 0;     //!< total up-step inc taps
    size_t downTaps = 0;   //!< total down-step inc taps
    size_t comparators = 0; //!< sorter compare-exchange elements
    size_t ltBlocks = 0;   //!< threshold-rank lt blocks
    size_t totalNodes = 0; //!< network size (all node kinds)
    size_t depth = 0;      //!< logic depth
};

/** Compute construction statistics without keeping the network. */
Srm0NetworkStats
srm0NetworkStats(const std::vector<ResponseFunction> &synapses,
                 ResponseFunction::Amp threshold);

} // namespace st

#endif // ST_NEURON_SRM0_NETWORK_HPP
